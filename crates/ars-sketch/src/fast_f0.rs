//! The fast level-list distinct-elements sketch (Algorithm 2, Lemma 5.2).
//!
//! The paper's fast static `F₀` algorithm assigns every item to a geometric
//! level `j` (level `j` with probability `2^{−(j+1)}`) via a `d`-wise
//! independent hash, stores the distinct item identities per level in a
//! list capped at `B = Θ(ε^{-2}(log log n + log δ^{-1}))` entries, deletes
//! ("saturates") any list that overflows, and estimates `F₀` from the
//! shallowest still-active list: if level `j` holds `|L_j|` identities then
//! `F₀ ≈ |L_j| · 2^{j+1}`.
//!
//! Its distinguishing feature — the reason Theorem 5.4 pairs it with the
//! computation-paths reduction rather than sketch switching — is that the
//! update-time dependence on the failure probability δ is tiny (only the
//! hash independence grows with `log δ^{-1}`), so setting
//! `δ = n^{-Θ(ε^{-1} log n)}` for the union bound over computation paths
//! keeps updates fast.
//!
//! Like every `F₀` structure in this crate, re-inserting an already stored
//! item never changes the state, which Section 10's cryptographic
//! transformation relies on.

use std::collections::HashSet;

use ars_hash::KWiseHash;
use ars_stream::Update;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Estimator, EstimatorFactory};

const LEVELS: usize = 61;

/// Configuration for [`FastF0Sketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastF0Config {
    /// Per-level list capacity `B = Θ(ε^{-2}(log log n + log δ^{-1}))`.
    pub list_capacity: usize,
    /// Independence `d = Θ(log log n + log δ^{-1})` of the level hash.
    pub hash_independence: usize,
    /// Number of distinct items stored exactly before switching to the
    /// randomized estimate (the paper stores the first `O(d/ε)` items
    /// exactly to absorb the batched-hashing reporting delay).
    pub exact_threshold: usize,
}

impl FastF0Config {
    /// Sizes the sketch for accuracy ε and failure probability δ over a
    /// domain of size `n`.
    #[must_use]
    pub fn for_accuracy(epsilon: f64, delta: f64, domain: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let loglog_n = (domain.max(4) as f64).ln().ln().max(1.0);
        let log_delta = (1.0 / delta).ln().max(1.0);
        let b = ((8.0 / (epsilon * epsilon)) * (loglog_n + log_delta).max(1.0)).ceil() as usize;
        let d = ((loglog_n + log_delta).ceil() as usize).max(4);
        Self {
            list_capacity: b.max(32),
            hash_independence: d,
            exact_threshold: ((d as f64 / epsilon).ceil() as usize).max(64),
        }
    }
}

/// State of one level list.
#[derive(Debug, Clone)]
enum Level {
    /// Still collecting identities.
    Active(HashSet<u64>),
    /// Overflowed and permanently deleted.
    Saturated,
}

/// The level-list `F₀` sketch of Algorithm 2.
#[derive(Debug, Clone)]
pub struct FastF0Sketch {
    config: FastF0Config,
    hash: KWiseHash,
    levels: Vec<Level>,
    /// Exact storage for the beginning of the stream.
    exact: Option<HashSet<u64>>,
}

impl FastF0Sketch {
    /// Builds the sketch with randomness derived from `seed`.
    #[must_use]
    pub fn new(config: FastF0Config, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            hash: KWiseHash::from_rng(config.hash_independence.max(2), &mut rng),
            levels: (0..LEVELS).map(|_| Level::Active(HashSet::new())).collect(),
            exact: Some(HashSet::new()),
            config,
        }
    }

    /// The level an item is assigned to (geometric with ratio 1/2).
    #[must_use]
    pub fn level_of(&self, item: u64) -> u32 {
        self.hash.level(item)
    }

    /// Estimate from the shallowest active level, as in Algorithm 2.
    fn randomized_estimate(&self) -> f64 {
        for (j, level) in self.levels.iter().enumerate() {
            if let Level::Active(set) = level {
                // Level j captures items with probability 2^{-(j+1)}.
                return set.len() as f64 * 2f64.powi(j as i32 + 1);
            }
        }
        // All levels saturated (astronomically unlikely with sane configs):
        // return the largest representable estimate from the deepest level.
        self.config.list_capacity as f64 * 2f64.powi(LEVELS as i32)
    }
}

impl Estimator for FastF0Sketch {
    fn update(&mut self, update: Update) {
        if update.delta <= 0 {
            return; // insertion-only structure
        }
        let item = update.item;
        if let Some(exact) = &mut self.exact {
            exact.insert(item);
            if exact.len() <= self.config.exact_threshold {
                // While in exact mode we still feed the level lists so the
                // hand-off is seamless.
            } else {
                self.exact = None;
            }
        }
        let j = self.hash.level(item) as usize;
        if let Level::Active(set) = &mut self.levels[j] {
            set.insert(item);
            if set.len() > self.config.list_capacity {
                self.levels[j] = Level::Saturated;
            }
        }
    }

    fn estimate(&self) -> f64 {
        if let Some(exact) = &self.exact {
            return exact.len() as f64;
        }
        self.randomized_estimate()
    }

    fn space_bytes(&self) -> usize {
        let lists: usize = self
            .levels
            .iter()
            .map(|l| match l {
                Level::Active(set) => set.len() * 8,
                Level::Saturated => 1,
            })
            .sum();
        let exact = self.exact.as_ref().map_or(0, |e| e.len() * 8);
        let hash = self.config.hash_independence * 8;
        lists + exact + hash
    }
}

/// Factory for [`FastF0Sketch`] instances.
#[derive(Debug, Clone, Copy)]
pub struct FastF0Factory {
    /// Configuration shared by every built instance.
    pub config: FastF0Config,
}

impl EstimatorFactory for FastF0Factory {
    type Output = FastF0Sketch;

    fn build(&self, seed: u64) -> FastF0Sketch {
        FastF0Sketch::new(self.config, seed)
    }

    fn name(&self) -> String {
        format!(
            "fast-f0(B={}, d={})",
            self.config.list_capacity, self.config.hash_independence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_stream::generator::{Generator, UniformGenerator};
    use ars_stream::FrequencyVector;

    #[test]
    fn exact_mode_for_small_cardinalities() {
        let mut sketch = FastF0Sketch::new(FastF0Config::for_accuracy(0.1, 0.01, 1 << 20), 1);
        for i in 0..50u64 {
            sketch.insert(i);
            sketch.insert(i);
        }
        assert_eq!(sketch.estimate(), 50.0);
    }

    #[test]
    fn estimates_large_cardinalities_within_epsilon() {
        let mut sketch = FastF0Sketch::new(FastF0Config::for_accuracy(0.05, 0.01, 1 << 20), 3);
        let n = 200_000u64;
        for i in 0..n {
            sketch.insert(i);
        }
        let est = sketch.estimate();
        assert!(
            (est - n as f64).abs() <= 0.15 * n as f64,
            "estimate {est} for {n} distinct"
        );
    }

    #[test]
    fn tracks_growth_on_random_streams() {
        let updates = UniformGenerator::new(100_000, 9).take_updates(150_000);
        let mut truth = FrequencyVector::new();
        let mut sketch = FastF0Sketch::new(FastF0Config::for_accuracy(0.05, 0.01, 1 << 20), 11);
        let mut max_err: f64 = 0.0;
        for &u in &updates {
            truth.apply(u);
            sketch.update(u);
            let t = truth.f0() as f64;
            if t > 5_000.0 {
                max_err = max_err.max(((sketch.estimate() - t) / t).abs());
            }
        }
        assert!(max_err < 0.2, "worst tracking error {max_err}");
    }

    #[test]
    fn duplicates_never_change_the_state() {
        let mut sketch = FastF0Sketch::new(FastF0Config::for_accuracy(0.1, 0.1, 1 << 16), 13);
        for i in 0..5_000u64 {
            sketch.insert(i);
        }
        let estimate_before = sketch.estimate();
        let space_before = sketch.space_bytes();
        for i in 0..5_000u64 {
            sketch.insert(i);
        }
        assert_eq!(sketch.estimate(), estimate_before);
        assert_eq!(sketch.space_bytes(), space_before);
    }

    #[test]
    fn levels_saturate_rather_than_grow_without_bound() {
        let config = FastF0Config {
            list_capacity: 64,
            hash_independence: 4,
            exact_threshold: 16,
        };
        let mut sketch = FastF0Sketch::new(config, 17);
        for i in 0..100_000u64 {
            sketch.insert(i);
        }
        // Level 0 holds about half of all items and must have saturated.
        assert!(matches!(sketch.levels[0], Level::Saturated));
        // Space stays bounded by roughly LEVELS * capacity words.
        assert!(sketch.space_bytes() < 61 * 64 * 8 + 1024);
    }

    #[test]
    fn deletions_are_ignored() {
        let mut sketch = FastF0Sketch::new(FastF0Config::for_accuracy(0.1, 0.1, 1 << 16), 19);
        sketch.insert(7);
        sketch.update(Update::delete(7));
        assert_eq!(sketch.estimate(), 1.0);
    }

    #[test]
    fn factory_name_mentions_parameters() {
        let factory = FastF0Factory {
            config: FastF0Config::for_accuracy(0.2, 0.1, 1024),
        };
        assert!(factory.name().contains("fast-f0"));
        let _ = factory.build(0);
    }
}
