//! `F_p` estimation for `p > 2` (Theorem 1.7's static ingredient).
//!
//! For `p > 2` any sketch needs `Ω(n^{1−2/p})` space, and the moment is
//! dominated by the largest coordinates: if `S` is the set of the
//! `k = Θ(n^{1−2/p})` largest coordinates then
//! `Σ_{i∉S} |f_i|^p ≤ (F₂/k)^{(p−2)/2} · F₂ ≤ ε·F_p` for suitable
//! constants. The estimator therefore:
//!
//! 1. maintains a [`CountSketch`] wide enough that point-query error is
//!    below the magnitude of the `k`-th largest coordinate, and
//! 2. tracks a candidate set of the `k` apparently-largest items, and
//! 3. reports `Σ_{candidates} max(\hat f_i, 0)^p`.
//!
//! This "heavy-elements" estimator has the same `n^{1−2/p} · poly(1/ε,
//! log n)` space shape as the Ganguly–Woodruff sketch the paper cites
//! (\[14\]); the full recursive subsampling machinery of \[14\] is orthogonal
//! to the robustification overhead measured by the benchmarks, so it is
//! omitted (documented substitution in DESIGN.md).

use ars_stream::Update;

use crate::countsketch::{CountSketch, CountSketchConfig};
use crate::{Estimator, EstimatorFactory, PointQueryEstimator};

/// Configuration for [`FpLargeSketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpLargeConfig {
    /// The moment order `p > 2`.
    pub p: f64,
    /// Number of heavy candidates tracked, `Θ(n^{1−2/p})`.
    pub heavy_items: usize,
    /// Width of the backing CountSketch.
    pub sketch_width: usize,
    /// Depth of the backing CountSketch.
    pub sketch_depth: usize,
}

impl FpLargeConfig {
    /// Sizes the estimator for moment order `p`, accuracy ε and domain `n`.
    #[must_use]
    pub fn for_accuracy(p: f64, epsilon: f64, domain: u64) -> Self {
        assert!(p > 2.0, "use the p-stable sketch for p <= 2");
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let n = domain.max(16) as f64;
        let heavy_items = (n.powf(1.0 - 2.0 / p).ceil() as usize).max(16);
        let sketch_width =
            ((heavy_items as f64 * 4.0 / epsilon).ceil() as usize).max(heavy_items * 2);
        Self {
            p,
            heavy_items,
            sketch_width,
            sketch_depth: 5,
        }
    }
}

/// The heavy-elements `F_p` estimator for `p > 2`.
#[derive(Debug, Clone)]
pub struct FpLargeSketch {
    config: FpLargeConfig,
    sketch: CountSketch,
}

impl FpLargeSketch {
    /// Builds the estimator with randomness derived from `seed`.
    #[must_use]
    pub fn new(config: FpLargeConfig, seed: u64) -> Self {
        let cs_config = CountSketchConfig {
            width: config.sketch_width,
            depth: config.sketch_depth,
            candidate_capacity: config.heavy_items,
        };
        Self {
            sketch: CountSketch::new(cs_config, seed),
            config,
        }
    }

    /// The moment order this sketch estimates.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.config.p
    }
}

impl Estimator for FpLargeSketch {
    fn update(&mut self, update: Update) {
        self.sketch.update(update);
    }

    fn estimate(&self) -> f64 {
        self.sketch
            .candidates()
            .into_iter()
            .take(self.config.heavy_items)
            .map(|(_, est)| est.abs().powf(self.config.p))
            .sum()
    }

    fn space_bytes(&self) -> usize {
        self.sketch.space_bytes()
    }
}

/// Factory for [`FpLargeSketch`] instances.
#[derive(Debug, Clone, Copy)]
pub struct FpLargeFactory {
    /// Configuration shared by every built instance.
    pub config: FpLargeConfig,
}

impl EstimatorFactory for FpLargeFactory {
    type Output = FpLargeSketch;

    fn build(&self, seed: u64) -> FpLargeSketch {
        FpLargeSketch::new(self.config, seed)
    }

    fn name(&self) -> String {
        format!(
            "fp-large(p={}, heavy={}, w={})",
            self.config.p, self.config.heavy_items, self.config.sketch_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_stream::generator::{Generator, ZipfGenerator};
    use ars_stream::FrequencyVector;

    #[test]
    fn exact_on_a_single_heavy_item() {
        let mut sketch = FpLargeSketch::new(FpLargeConfig::for_accuracy(3.0, 0.2, 1 << 12), 1);
        for _ in 0..100 {
            sketch.insert(5);
        }
        let est = sketch.estimate();
        let truth = 100f64.powi(3);
        assert!(
            ((est - truth) / truth).abs() < 0.05,
            "estimate {est} vs {truth}"
        );
    }

    #[test]
    fn tracks_f3_on_skewed_streams() {
        let updates = ZipfGenerator::new(4_096, 1.4, 7).take_updates(60_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let mut sketch = FpLargeSketch::new(FpLargeConfig::for_accuracy(3.0, 0.1, 4_096), 9);
        for &u in &updates {
            sketch.update(u);
        }
        let est = sketch.estimate();
        let t = truth.fp(3.0);
        assert!(
            ((est - t) / t).abs() < 0.3,
            "F3 estimate {est} vs truth {t}"
        );
    }

    #[test]
    fn tracks_f4_on_skewed_streams() {
        let updates = ZipfGenerator::new(4_096, 1.3, 11).take_updates(60_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let mut sketch = FpLargeSketch::new(FpLargeConfig::for_accuracy(4.0, 0.1, 4_096), 13);
        for &u in &updates {
            sketch.update(u);
        }
        let est = sketch.estimate();
        let t = truth.fp(4.0);
        assert!(
            ((est - t) / t).abs() < 0.3,
            "F4 estimate {est} vs truth {t}"
        );
    }

    #[test]
    fn space_grows_with_the_heavy_item_budget() {
        let p3 = FpLargeSketch::new(FpLargeConfig::for_accuracy(3.0, 0.2, 1 << 16), 0);
        let p6 = FpLargeSketch::new(FpLargeConfig::for_accuracy(6.0, 0.2, 1 << 16), 0);
        // n^{1-2/6} = n^{2/3} > n^{1/3} = n^{1-2/3}.
        assert!(p6.space_bytes() > p3.space_bytes());
    }

    #[test]
    #[should_panic(expected = "p-stable")]
    fn rejects_small_p() {
        let _ = FpLargeConfig::for_accuracy(2.0, 0.1, 1024);
    }

    #[test]
    fn factory_builds_and_names() {
        let factory = FpLargeFactory {
            config: FpLargeConfig::for_accuracy(3.0, 0.25, 1 << 10),
        };
        let _ = factory.build(5);
        assert!(factory.name().contains("fp-large"));
    }
}
