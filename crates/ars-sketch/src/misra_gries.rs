//! Misra–Gries deterministic heavy hitters.
//!
//! The classic `O(ε^{-1} log n)`-space deterministic algorithm for `L₁`
//! heavy hitters on insertion-only streams [32 in the paper]. Deterministic
//! algorithms are inherently adversarially robust, so Misra–Gries is the
//! deterministic baseline in the Table 1 heavy-hitters comparison: it shows
//! what robustness costs *without* randomness (an `L₁` rather than `L₂`
//! guarantee, i.e. potentially far weaker recall on skewed streams).

use std::collections::HashMap;

use ars_stream::Update;

use crate::{Estimator, PointQueryEstimator};

/// The Misra–Gries summary with `k` counters.
///
/// For every item, the estimate returned by [`MisraGries::query`]
/// undercounts the true frequency by at most `‖f‖₁ / (k + 1)`.
#[derive(Debug, Clone)]
pub struct MisraGries {
    k: usize,
    counters: HashMap<u64, u64>,
    total: u64,
}

impl MisraGries {
    /// Creates a summary with `k` counters (`k = ⌈1/ε⌉` for an `ε‖f‖₁`
    /// undercount bound).
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            k,
            counters: HashMap::with_capacity(k + 1),
            total: 0,
        }
    }

    /// Creates a summary sized for an `ε‖f‖₁` undercount bound.
    #[must_use]
    pub fn for_accuracy(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        Self::new((1.0 / epsilon).ceil() as usize)
    }

    /// Lower-bound estimate of `f_item` (never overestimates).
    #[must_use]
    pub fn query(&self, item: u64) -> u64 {
        self.counters.get(&item).copied().unwrap_or(0)
    }

    /// Items whose estimated frequency is at least `threshold`.
    #[must_use]
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .counters
            .iter()
            .filter(|(_, &c)| c as f64 >= threshold)
            .map(|(&i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }

    /// The total number of unit insertions processed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl Estimator for MisraGries {
    fn update(&mut self, update: Update) {
        if update.delta <= 0 {
            return; // insertion-only algorithm
        }
        let weight = update.delta as u64;
        self.total += weight;
        if let Some(c) = self.counters.get_mut(&update.item) {
            *c += weight;
            return;
        }
        if self.counters.len() < self.k {
            self.counters.insert(update.item, weight);
            return;
        }
        // Decrement-all step, repeated `weight` times but executed in one
        // pass: subtract the largest amount that keeps all counters
        // non-negative, insert the remainder if any budget is left.
        let min_counter = self.counters.values().copied().min().unwrap_or(0);
        let decrement = min_counter.min(weight);
        if decrement > 0 {
            self.counters.retain(|_, c| {
                *c -= decrement;
                *c > 0
            });
        }
        let remaining = weight - decrement;
        if remaining > 0 && self.counters.len() < self.k {
            self.counters.insert(update.item, remaining);
        }
    }

    /// As a bare estimator, Misra–Gries reports the exact stream mass
    /// (which is what its heavy-hitter threshold is relative to).
    fn estimate(&self) -> f64 {
        self.total as f64
    }

    fn space_bytes(&self) -> usize {
        self.k * (8 + 8) + 8
    }
}

impl PointQueryEstimator for MisraGries {
    fn point_estimate(&self, item: u64) -> f64 {
        self.query(item) as f64
    }

    fn candidates(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self.counters.iter().map(|(&i, &c)| (i, c as f64)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite counts"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_stream::generator::{Generator, ZipfGenerator};
    use ars_stream::FrequencyVector;

    #[test]
    fn undercount_is_bounded() {
        let updates = ZipfGenerator::new(5_000, 1.2, 3).take_updates(40_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let epsilon = 0.01;
        let mut mg = MisraGries::for_accuracy(epsilon);
        for &u in &updates {
            mg.update(u);
        }
        let bound = epsilon * truth.l1();
        for item in 0..100u64 {
            let est = mg.query(item) as f64;
            let actual = truth.get(item) as f64;
            assert!(est <= actual + 1e-9, "Misra-Gries must never overestimate");
            assert!(
                actual - est <= bound + 1e-9,
                "undercount of item {item} is {} > {bound}",
                actual - est
            );
        }
    }

    #[test]
    fn finds_l1_heavy_hitters() {
        let updates = ZipfGenerator::new(10_000, 1.5, 7).take_updates(50_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let mut mg = MisraGries::for_accuracy(0.005);
        for &u in &updates {
            mg.update(u);
        }
        // Anything with frequency >= 5% of the mass must be reported at the
        // 4% threshold (undercount is at most 0.5%).
        let reported = mg.heavy_hitters(0.04 * truth.l1());
        for item in truth.l1_heavy_hitters(0.05) {
            assert!(reported.contains(&item));
        }
    }

    #[test]
    fn counter_budget_is_respected() {
        let mut mg = MisraGries::new(5);
        for i in 0..1_000u64 {
            mg.insert(i);
        }
        assert!(mg.counters.len() <= 5);
    }

    #[test]
    fn weighted_insertions_match_repeated_unit_insertions() {
        let mut weighted = MisraGries::new(4);
        let mut units = MisraGries::new(4);
        let stream = [(1u64, 5i64), (2, 3), (3, 1), (1, 2), (4, 4), (5, 1)];
        for &(item, w) in &stream {
            weighted.update(Update::new(item, w));
            for _ in 0..w {
                units.insert(item);
            }
        }
        // Estimates may differ slightly in how decrements interleave, but
        // the undercount bound must hold for both; check the guarantee.
        let total: i64 = stream.iter().map(|&(_, w)| w).sum();
        for &(item, _) in &stream {
            let exact: i64 = stream
                .iter()
                .filter(|&&(i, _)| i == item)
                .map(|&(_, w)| w)
                .sum();
            for mg in [&weighted, &units] {
                let est = mg.query(item) as i64;
                assert!(est <= exact);
                assert!(exact - est <= total / 5 + 1);
            }
        }
    }

    #[test]
    fn deterministic_and_deletion_insensitive() {
        let mut a = MisraGries::new(8);
        let mut b = MisraGries::new(8);
        for i in 0..500u64 {
            a.insert(i % 20);
            b.insert(i % 20);
        }
        b.update(Update::delete(3));
        // Compare as item -> count maps: candidate ordering may differ for
        // equal counts, but the retained counters must be identical.
        let to_map = |mg: &MisraGries| {
            let mut v = mg.candidates();
            v.sort_by_key(|&(item, _)| item);
            v
        };
        assert_eq!(to_map(&a), to_map(&b));
    }
}
