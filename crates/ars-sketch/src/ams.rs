//! The Alon–Matias–Szegedy (AMS) sketch for `F₂` estimation.
//!
//! The AMS sketch maintains `t` counters `z_j = Σ_i s_j(i) · f_i` where each
//! `s_j` is a 4-wise independent ±1 sign function. Each `z_j²` is an
//! unbiased estimator of `F₂ = ‖f‖₂²` with variance at most `2 F₂²`, so the
//! mean of `t = O(1/ε²)` of them is a `(1 ± ε)` approximation with constant
//! probability, and the median of `O(log 1/δ)` independent means boosts the
//! success probability to `1 − δ`.
//!
//! This sketch is the *attack target* of Section 9: the estimate
//! `(1/t)‖S f‖₂²` leaks enough information about the random signs for an
//! adaptive adversary to drive the estimate far below the true `F₂` after
//! only `O(t)` chosen updates ([`ars_adversary`'s](https://docs.rs) attack
//! module reproduces Algorithm 3). It is therefore the canonical example of
//! a statically correct but non-robust linear sketch.

use ars_hash::SignHash;
use ars_stream::Update;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Estimator, EstimatorFactory};

/// Configuration for [`AmsSketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmsConfig {
    /// Number of counters (rows) per independent mean; `Θ(1/ε²)`.
    pub rows_per_mean: usize,
    /// Number of independent means the median is taken over; `Θ(log 1/δ)`.
    pub means: usize,
}

impl AmsConfig {
    /// Sizes the sketch for a `(1 ± ε)` guarantee with failure probability δ
    /// on an oblivious stream, using the standard mean-of-`6/ε²` /
    /// median-of-`O(log 1/δ)` parametrization.
    #[must_use]
    pub fn for_accuracy(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let rows_per_mean = ((6.0 / (epsilon * epsilon)).ceil() as usize).max(1);
        let means = ((8.0 * (1.0 / delta).ln()).ceil() as usize).max(1) | 1;
        Self {
            rows_per_mean,
            means,
        }
    }

    /// A sketch with exactly `t` rows and a single mean (no median
    /// boosting). This is the plain `S ∈ R^{t×n}` sketch attacked in
    /// Section 9, whose estimate is `(1/t) ‖S f‖₂²`.
    #[must_use]
    pub fn single_mean(rows: usize) -> Self {
        Self {
            rows_per_mean: rows.max(1),
            means: 1,
        }
    }
}

/// The AMS `F₂` sketch.
#[derive(Debug, Clone)]
pub struct AmsSketch {
    config: AmsConfig,
    /// Sign functions, one per (mean, row).
    signs: Vec<SignHash>,
    /// Counters `z_{g,j} = Σ_i s_{g,j}(i) f_i`, flattened row-major by mean.
    counters: Vec<f64>,
}

impl AmsSketch {
    /// Builds the sketch with fresh randomness derived from `seed`.
    #[must_use]
    pub fn new(config: AmsConfig, seed: u64) -> Self {
        let total = config.rows_per_mean * config.means;
        let mut rng = StdRng::seed_from_u64(seed);
        let signs = (0..total).map(|_| SignHash::from_rng(&mut rng)).collect();
        Self {
            config,
            signs,
            counters: vec![0.0; total],
        }
    }

    /// The number of rows per independent mean.
    #[must_use]
    pub fn rows_per_mean(&self) -> usize {
        self.config.rows_per_mean
    }

    /// The mean of squared counters within one group — an unbiased `F₂`
    /// estimate for an oblivious stream.
    fn group_mean(&self, group: usize) -> f64 {
        let start = group * self.config.rows_per_mean;
        let end = start + self.config.rows_per_mean;
        let sum: f64 = self.counters[start..end].iter().map(|z| z * z).sum();
        sum / self.config.rows_per_mean as f64
    }
}

impl Estimator for AmsSketch {
    fn update(&mut self, update: Update) {
        let delta = update.delta as f64;
        for (counter, sign) in self.counters.iter_mut().zip(&self.signs) {
            *counter += sign.sign(update.item) as f64 * delta;
        }
    }

    fn estimate(&self) -> f64 {
        let mut means: Vec<f64> = (0..self.config.means).map(|g| self.group_mean(g)).collect();
        means.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
        means[means.len() / 2]
    }

    fn space_bytes(&self) -> usize {
        // Each counter is one machine word; each 4-wise sign hash stores
        // four 8-byte field coefficients.
        self.counters.len() * 8 + self.signs.len() * 4 * 8
    }
}

/// Factory for [`AmsSketch`] instances, used by the robust wrappers.
#[derive(Debug, Clone, Copy)]
pub struct AmsFactory {
    /// The configuration every built instance shares.
    pub config: AmsConfig,
}

impl EstimatorFactory for AmsFactory {
    type Output = AmsSketch;

    fn build(&self, seed: u64) -> AmsSketch {
        AmsSketch::new(self.config, seed)
    }

    fn name(&self) -> String {
        format!(
            "ams(t={}, medians={})",
            self.config.rows_per_mean, self.config.means
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_stream::FrequencyVector;
    use rand::Rng;

    fn random_stream(n: u64, m: usize, seed: u64) -> Vec<Update> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| Update::insert(rng.gen_range(0..n)))
            .collect()
    }

    #[test]
    fn estimates_f2_of_a_point_mass_exactly() {
        // All mass on one item: every counter is ±f_1, so z² = f² exactly.
        let mut sketch = AmsSketch::new(AmsConfig::single_mean(16), 1);
        for _ in 0..100 {
            sketch.insert(42);
        }
        assert!((sketch.estimate() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn estimates_f2_within_epsilon_on_random_streams() {
        let updates = random_stream(500, 20_000, 3);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let f2 = truth.f2();

        let mut sketch = AmsSketch::new(AmsConfig::for_accuracy(0.1, 0.01), 7);
        for &u in &updates {
            sketch.update(u);
        }
        let est = sketch.estimate();
        assert!((est - f2).abs() <= 0.1 * f2, "estimate {est} vs truth {f2}");
    }

    #[test]
    fn handles_deletions_linearly() {
        let mut sketch = AmsSketch::new(AmsConfig::for_accuracy(0.2, 0.05), 5);
        for i in 0..200u64 {
            sketch.insert(i);
        }
        // Delete everything: the sketch is linear so it returns to zero.
        for i in 0..200u64 {
            sketch.update(Update::delete(i));
        }
        assert!(sketch.estimate().abs() < 1e-9);
    }

    #[test]
    fn accuracy_improves_with_more_rows() {
        let updates = random_stream(2_000, 30_000, 11);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let f2 = truth.f2();

        let mut coarse_errors = 0.0;
        let mut fine_errors = 0.0;
        for trial in 0..5u64 {
            let mut coarse = AmsSketch::new(AmsConfig::single_mean(8), 100 + trial);
            let mut fine = AmsSketch::new(AmsConfig::single_mean(512), 200 + trial);
            for &u in &updates {
                coarse.update(u);
                fine.update(u);
            }
            coarse_errors += ((coarse.estimate() - f2) / f2).abs();
            fine_errors += ((fine.estimate() - f2) / f2).abs();
        }
        assert!(
            fine_errors < coarse_errors,
            "512-row sketch should beat 8-row sketch on average \
             (fine {fine_errors} vs coarse {coarse_errors})"
        );
    }

    #[test]
    fn space_accounting_grows_with_configuration() {
        let small = AmsSketch::new(AmsConfig::single_mean(8), 0);
        let large = AmsSketch::new(AmsConfig::single_mean(64), 0);
        assert!(large.space_bytes() > small.space_bytes());
    }

    #[test]
    fn factory_builds_independent_instances() {
        let factory = AmsFactory {
            config: AmsConfig::single_mean(32),
        };
        let mut a = factory.build(1);
        let mut b = factory.build(2);
        for i in 0..50u64 {
            a.insert(i);
            b.insert(i);
        }
        // Different seeds give different internal states (counters differ)
        // even though both estimate the same quantity.
        assert_ne!(a.counters, b.counters);
        assert!(factory.name().contains("ams"));
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let sketch = AmsSketch::new(AmsConfig::for_accuracy(0.5, 0.1), 9);
        assert_eq!(sketch.estimate(), 0.0);
    }
}
