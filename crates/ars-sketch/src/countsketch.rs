//! CountSketch: `L₂` point queries and heavy hitters (Charikar–Chen–
//! Farach-Colton, Lemma 6.4 of the paper).
//!
//! The sketch keeps `d` rows of `w` counters. Each row `r` has a pairwise
//! independent bucket hash `h_r` and a 4-wise independent sign hash `s_r`;
//! an update `(i, Δ)` adds `s_r(i)·Δ` to counter `h_r(i)` of every row. The
//! point-query estimate of `f_i` is the median over rows of
//! `s_r(i) · C_r[h_r(i)]`, which is within `ε‖f‖₂` of the truth with
//! probability `1 − δ` when `w = O(1/ε²)` and `d = O(log(n/δ))`.
//!
//! For the heavy-hitters problem the sketch additionally maintains a small
//! candidate set of the items with the largest current point estimates, so
//! the query "all items with `|f_i| ≥ ε‖f‖₂`" can be answered without
//! enumerating the domain.

use std::collections::HashMap;

use ars_hash::{KWiseHash, SignHash};
use ars_stream::Update;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Estimator, EstimatorFactory, PointQueryEstimator};

/// Configuration for [`CountSketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountSketchConfig {
    /// Counters per row; `Θ(1/ε²)` for the `ε‖f‖₂` point-query guarantee.
    pub width: usize,
    /// Number of rows; `Θ(log(n/δ))`.
    pub depth: usize,
    /// Maximum number of candidate heavy items retained for
    /// [`PointQueryEstimator::candidates`].
    pub candidate_capacity: usize,
}

impl CountSketchConfig {
    /// Sizes the sketch for `(ε, δ)` point queries over a domain of size `n`.
    #[must_use]
    pub fn for_accuracy(epsilon: f64, delta: f64, domain: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let width = ((6.0 / (epsilon * epsilon)).ceil() as usize).max(8);
        let depth = (((domain.max(2) as f64 / delta).ln() / std::f64::consts::LN_2).ceil()
            as usize)
            .clamp(3, 64)
            | 1;
        let candidate_capacity = ((2.0 / epsilon).ceil() as usize).max(16);
        Self {
            width,
            depth,
            candidate_capacity,
        }
    }
}

/// The CountSketch data structure.
#[derive(Debug, Clone)]
pub struct CountSketch {
    config: CountSketchConfig,
    bucket_hashes: Vec<KWiseHash>,
    sign_hashes: Vec<SignHash>,
    /// Row-major `depth × width` counter matrix.
    counters: Vec<f64>,
    /// Candidate heavy items and their last refreshed estimates.
    candidates: HashMap<u64, f64>,
}

impl CountSketch {
    /// Builds a CountSketch with fresh randomness derived from `seed`.
    #[must_use]
    pub fn new(config: CountSketchConfig, seed: u64) -> Self {
        assert!(config.width > 0 && config.depth > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let bucket_hashes = (0..config.depth)
            .map(|_| KWiseHash::from_rng(2, &mut rng))
            .collect();
        let sign_hashes = (0..config.depth)
            .map(|_| SignHash::from_rng(&mut rng))
            .collect();
        Self {
            counters: vec![0.0; config.width * config.depth],
            bucket_hashes,
            sign_hashes,
            candidates: HashMap::with_capacity(config.candidate_capacity + 1),
            config,
        }
    }

    #[inline]
    fn counter_index(&self, row: usize, item: u64) -> usize {
        row * self.config.width
            + self.bucket_hashes[row].bucket(item, self.config.width as u64) as usize
    }

    /// Median-over-rows point estimate of `f_item`.
    #[must_use]
    pub fn query(&self, item: u64) -> f64 {
        let mut row_estimates: Vec<f64> = (0..self.config.depth)
            .map(|r| {
                self.sign_hashes[r].sign(item) as f64 * self.counters[self.counter_index(r, item)]
            })
            .collect();
        row_estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
        let mid = row_estimates.len() / 2;
        if row_estimates.len() % 2 == 1 {
            row_estimates[mid]
        } else {
            (row_estimates[mid - 1] + row_estimates[mid]) / 2.0
        }
    }

    /// An `F₂` estimate from the first row of counters (`Σ_b C[b]²` is the
    /// AMS estimator applied bucket-wise). Used only as a coarse norm proxy;
    /// the robust heavy-hitters algorithm pairs this sketch with a dedicated
    /// robust `F₂` estimator instead.
    #[must_use]
    pub fn f2_estimate(&self) -> f64 {
        let mut row_sums: Vec<f64> = (0..self.config.depth)
            .map(|r| {
                self.counters[r * self.config.width..(r + 1) * self.config.width]
                    .iter()
                    .map(|c| c * c)
                    .sum()
            })
            .collect();
        row_sums.sort_by(|a, b| a.partial_cmp(b).expect("finite sums"));
        row_sums[row_sums.len() / 2]
    }

    /// All candidate items whose estimated frequency is at least `threshold`.
    #[must_use]
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .candidates
            .keys()
            .copied()
            .filter(|&item| self.query(item).abs() >= threshold)
            .collect();
        out.sort_unstable();
        out
    }

    fn refresh_candidate(&mut self, item: u64) {
        let estimate = self.query(item).abs();
        self.candidates.insert(item, estimate);
        if self.candidates.len() > self.config.candidate_capacity {
            // Evict the candidate with the smallest refreshed estimate.
            if let Some((&weakest, _)) = self
                .candidates
                .iter()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite estimates"))
            {
                if weakest != item || self.candidates.len() > self.config.candidate_capacity {
                    self.candidates.remove(&weakest);
                }
            }
        }
    }
}

impl Estimator for CountSketch {
    fn update(&mut self, update: Update) {
        let delta = update.delta as f64;
        for r in 0..self.config.depth {
            let idx = self.counter_index(r, update.item);
            self.counters[idx] += self.sign_hashes[r].sign(update.item) as f64 * delta;
        }
        self.refresh_candidate(update.item);
    }

    fn estimate(&self) -> f64 {
        self.f2_estimate()
    }

    fn space_bytes(&self) -> usize {
        let counters = self.counters.len() * 8;
        let hashes = self.config.depth * (2 + 4) * 8;
        let candidates = self.config.candidate_capacity * (8 + 8);
        counters + hashes + candidates
    }
}

impl PointQueryEstimator for CountSketch {
    fn point_estimate(&self, item: u64) -> f64 {
        self.query(item)
    }

    fn candidates(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .candidates
            .keys()
            .map(|&item| (item, self.query(item)))
            .collect();
        out.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite estimates"));
        out
    }
}

/// Factory for [`CountSketch`] instances.
#[derive(Debug, Clone, Copy)]
pub struct CountSketchFactory {
    /// Configuration shared by every built instance.
    pub config: CountSketchConfig,
}

impl EstimatorFactory for CountSketchFactory {
    type Output = CountSketch;

    fn build(&self, seed: u64) -> CountSketch {
        CountSketch::new(self.config, seed)
    }

    fn name(&self) -> String {
        format!(
            "countsketch(w={}, d={})",
            self.config.width, self.config.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_stream::generator::{BurstyGenerator, Generator};
    use ars_stream::FrequencyVector;

    fn skewed_stream(m: usize, seed: u64) -> Vec<Update> {
        BurstyGenerator::new(10_000, 4, 0.4, seed).take_updates(m)
    }

    #[test]
    fn point_queries_track_heavy_items() {
        let updates = skewed_stream(30_000, 3);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let mut sketch = CountSketch::new(CountSketchConfig::for_accuracy(0.05, 0.01, 10_000), 7);
        for &u in &updates {
            sketch.update(u);
        }
        let tolerance = 0.05 * truth.l2();
        for item in 0..4u64 {
            let est = sketch.query(item);
            let actual = truth.get(item) as f64;
            assert!(
                (est - actual).abs() <= tolerance,
                "item {item}: estimate {est} vs true {actual} (tolerance {tolerance})"
            );
        }
    }

    #[test]
    fn light_items_are_not_overestimated_badly() {
        let updates = skewed_stream(30_000, 5);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let mut sketch = CountSketch::new(CountSketchConfig::for_accuracy(0.05, 0.01, 10_000), 11);
        for &u in &updates {
            sketch.update(u);
        }
        let tolerance = 0.05 * truth.l2();
        // An item that never appeared should have a small estimate.
        let est = sketch.query(999_999);
        assert!(est.abs() <= tolerance, "absent item estimated at {est}");
    }

    #[test]
    fn heavy_hitters_recall_planted_items() {
        let updates = skewed_stream(40_000, 13);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let mut sketch = CountSketch::new(CountSketchConfig::for_accuracy(0.05, 0.01, 10_000), 17);
        for &u in &updates {
            sketch.update(u);
        }
        let threshold = 0.1 * truth.l2();
        let reported = sketch.heavy_hitters(threshold);
        for item in truth.heavy_hitters(threshold) {
            assert!(
                reported.contains(&item),
                "true heavy hitter {item} missing from {reported:?}"
            );
        }
    }

    #[test]
    fn deletions_cancel_insertions() {
        let mut sketch = CountSketch::new(CountSketchConfig::for_accuracy(0.1, 0.01, 1000), 23);
        for i in 0..100u64 {
            sketch.insert(i);
            sketch.insert(i);
        }
        for i in 0..100u64 {
            sketch.update(Update::delete(i));
        }
        // Every frequency is now exactly 1.
        for i in 0..10u64 {
            let est = sketch.query(i);
            assert!((est - 1.0).abs() < 0.5 + 0.1 * (100f64).sqrt());
        }
    }

    #[test]
    fn candidate_set_is_bounded() {
        let mut config = CountSketchConfig::for_accuracy(0.1, 0.01, 100_000);
        config.candidate_capacity = 10;
        let mut sketch = CountSketch::new(config, 31);
        for i in 0..10_000u64 {
            sketch.insert(i);
        }
        assert!(sketch.candidates().len() <= 10);
    }

    #[test]
    fn f2_estimate_is_reasonable() {
        let updates = skewed_stream(20_000, 41);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let mut sketch = CountSketch::new(CountSketchConfig::for_accuracy(0.05, 0.01, 10_000), 43);
        for &u in &updates {
            sketch.update(u);
        }
        let est = sketch.f2_estimate();
        let f2 = truth.f2();
        assert!(
            (est - f2).abs() <= 0.2 * f2,
            "F2 estimate {est} vs truth {f2}"
        );
    }

    #[test]
    fn space_accounting_scales_with_width() {
        let narrow = CountSketch::new(
            CountSketchConfig {
                width: 32,
                depth: 5,
                candidate_capacity: 8,
            },
            0,
        );
        let wide = CountSketch::new(
            CountSketchConfig {
                width: 512,
                depth: 5,
                candidate_capacity: 8,
            },
            0,
        );
        assert!(wide.space_bytes() > narrow.space_bytes());
    }
}
