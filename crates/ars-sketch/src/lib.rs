//! Static (non-robust) streaming sketches.
//!
//! These are the "ingredient" algorithms the PODS 2020 robustness framework
//! wraps: each gives a `(1 ± ε)` (or additive-ε for entropy) guarantee when
//! the stream is fixed in advance, i.e. *oblivious* to the algorithm's
//! randomness. None of them is adversarially robust on its own — Section 9
//! of the paper exhibits an explicit adaptive attack on the AMS sketch, and
//! `ars-adversary` reproduces it.
//!
//! The sketches implemented here and the paper results they support:
//!
//! | Module | Sketch | Used by |
//! |---|---|---|
//! | [`ams`] | Alon–Matias–Szegedy F₂ sketch | Theorem 9.1 (attack target), F₂ baseline |
//! | [`countsketch`] | CountSketch point queries / L₂ heavy hitters | Theorem 6.5 |
//! | [`countmin`] | Count-Min L₁ point queries | heavy-hitters baselines |
//! | [`kmv`] | bottom-k (KMV) distinct elements | Theorem 1.1 static ingredient |
//! | [`fast_f0`] | level-list distinct elements (Algorithm 2) | Lemma 5.2 / Theorem 5.4 |
//! | [`pstable`] | p-stable Fₚ estimation, 0 < p ≤ 2 | Theorems 1.4, 1.5, 4.3 |
//! | [`f1`] | exact F₁ counter | footnote 3, entropy reduction |
//! | [`fp_large`] | Fₚ for p > 2 (subsample + heavy elements) | Theorem 1.7 |
//! | [`entropy`] | Rényi/plug-in entropy estimators | Theorem 1.10 |
//! | [`misra_gries`] | deterministic heavy hitters | deterministic baseline in Table 1 |
//! | [`tracking`] | strong-tracking wrappers (median + epoch union bound) | Lemmas 2.2, 2.3 |
//!
//! Every sketch reports its memory footprint via [`Estimator::space_bytes`]
//! so the benchmark harness can regenerate the space columns of Table 1.
//!
//! The pool-based robustification strategies in `ars-core` instantiate
//! these sketches per copy through [`EstimatorFactory`]: sketch switching
//! and DP aggregation feed every copy the whole stream, and the
//! difference-estimator strategy (Attias et al. 2022) additionally reads
//! *differences* of one copy's estimates at two stream points — sound for
//! any tracking sketch here, since a single instance's readings all refer
//! to the same prefix.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ams;
pub mod countmin;
pub mod countsketch;
pub mod entropy;
pub mod f1;
pub mod fast_f0;
pub mod fp_large;
pub mod kmv;
pub mod misra_gries;
pub mod pstable;
pub mod tracking;

pub use ams::{AmsConfig, AmsSketch};
pub use countmin::{CountMinConfig, CountMinSketch};
pub use countsketch::{CountSketch, CountSketchConfig};
pub use entropy::{
    RenyiEntropyConfig, RenyiEntropyEstimator, SampledEntropyConfig, SampledEntropyEstimator,
};
pub use f1::{F1Config, F1Counter};
pub use fast_f0::{FastF0Config, FastF0Sketch};
pub use fp_large::{FpLargeConfig, FpLargeSketch};
pub use kmv::{KmvConfig, KmvSketch};
pub use misra_gries::MisraGries;
pub use pstable::{PStableConfig, PStableSketch};
pub use tracking::{MedianTracking, MedianTrackingConfig};

use ars_stream::Update;

/// A streaming estimator: consumes updates and answers a single numeric
/// query (a frequency moment, an entropy, …) about the stream so far.
///
/// Estimators must answer [`Estimator::estimate`] at any point — all the
/// paper's algorithms provide *tracking* — and report the memory they use
/// so experiments can reproduce the space columns of Table 1.
pub trait Estimator {
    /// Processes one stream update.
    fn update(&mut self, update: Update);

    /// Returns the current estimate of the tracked quantity.
    fn estimate(&self) -> f64;

    /// Approximate memory footprint of the sketch state in bytes.
    ///
    /// This is an accounting of the *algorithmic* state (counters, stored
    /// identities, hash-function descriptions), which is what the paper's
    /// space bounds measure; allocator overhead is not modelled.
    fn space_bytes(&self) -> usize;

    /// Convenience: processes a unit insertion of `item`.
    fn insert(&mut self, item: u64) {
        self.update(Update::insert(item));
    }
}

/// A factory producing independent, identically configured estimator
/// instances from fresh seeds.
///
/// The robustification wrappers in `ars-core` (sketch switching and
/// computation paths) need to instantiate many independent copies of a
/// static sketch; this trait is the seam they use.
pub trait EstimatorFactory {
    /// The estimator type this factory builds.
    type Output: Estimator;

    /// Builds a fresh, independent instance seeded by `seed`.
    fn build(&self, seed: u64) -> Self::Output;

    /// A short human-readable name used in benchmark tables.
    fn name(&self) -> String;
}

/// An estimator that can also answer per-item frequency (point) queries,
/// as needed by the heavy-hitters constructions of Section 6.
pub trait PointQueryEstimator: Estimator {
    /// Estimates the frequency `f_i` of a single item.
    fn point_estimate(&self, item: u64) -> f64;

    /// Returns the current set of candidate heavy items tracked by the
    /// sketch, with their estimated frequencies.
    fn candidates(&self) -> Vec<(u64, f64)>;
}
