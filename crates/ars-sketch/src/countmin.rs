//! Count-Min sketch: `L₁` point queries with one-sided error.
//!
//! Maintains `d` rows of `w` non-negative counters with pairwise
//! independent bucket hashes. The point query returns the minimum counter
//! an item hashes to, which overestimates `f_i` by at most `(e/w)·‖f‖₁`
//! with probability `1 − e^{−d}` on insertion-only streams.
//!
//! In this repository Count-Min serves as the cheap `L₁` baseline in the
//! heavy-hitters comparisons (Table 1 contrasts `L₁` and `L₂` guarantees);
//! the paper's robust heavy-hitters algorithm itself uses CountSketch.

use ars_hash::MultiplyShiftHash;
use ars_stream::Update;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Estimator, EstimatorFactory, PointQueryEstimator};

/// Configuration for [`CountMinSketch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountMinConfig {
    /// Counters per row; `Θ(1/ε)` for an `ε‖f‖₁` overestimate bound.
    pub width: usize,
    /// Number of rows; `Θ(log 1/δ)`.
    pub depth: usize,
    /// Maximum number of candidate heavy items retained.
    pub candidate_capacity: usize,
}

impl CountMinConfig {
    /// Sizes the sketch for `(ε, δ)` `L₁` point queries.
    #[must_use]
    pub fn for_accuracy(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        Self {
            width: ((std::f64::consts::E / epsilon).ceil() as usize).max(4),
            depth: ((1.0 / delta).ln().ceil() as usize).max(2),
            candidate_capacity: ((2.0 / epsilon).ceil() as usize).max(16),
        }
    }
}

/// The Count-Min sketch.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    config: CountMinConfig,
    hashes: Vec<MultiplyShiftHash>,
    counters: Vec<f64>,
    candidates: std::collections::HashMap<u64, f64>,
    total_mass: f64,
}

impl CountMinSketch {
    /// Builds a Count-Min sketch with randomness derived from `seed`.
    #[must_use]
    pub fn new(config: CountMinConfig, seed: u64) -> Self {
        assert!(config.width > 0 && config.depth > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let hashes = (0..config.depth)
            .map(|_| MultiplyShiftHash::from_rng(64, &mut rng))
            .collect();
        Self {
            counters: vec![0.0; config.width * config.depth],
            hashes,
            candidates: std::collections::HashMap::new(),
            total_mass: 0.0,
            config,
        }
    }

    #[inline]
    fn counter_index(&self, row: usize, item: u64) -> usize {
        row * self.config.width + self.hashes[row].bucket(item, self.config.width as u64) as usize
    }

    /// The minimum-counter point query estimate of `f_item`.
    #[must_use]
    pub fn query(&self, item: u64) -> f64 {
        (0..self.config.depth)
            .map(|r| self.counters[self.counter_index(r, item)])
            .fold(f64::INFINITY, f64::min)
    }

    /// All candidate items with estimated frequency at least `threshold`.
    #[must_use]
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .candidates
            .keys()
            .copied()
            .filter(|&item| self.query(item) >= threshold)
            .collect();
        out.sort_unstable();
        out
    }
}

impl Estimator for CountMinSketch {
    fn update(&mut self, update: Update) {
        let delta = update.delta as f64;
        self.total_mass += delta;
        for r in 0..self.config.depth {
            let idx = self.counter_index(r, update.item);
            self.counters[idx] += delta;
        }
        let estimate = self.query(update.item);
        self.candidates.insert(update.item, estimate);
        if self.candidates.len() > self.config.candidate_capacity {
            if let Some((&weakest, _)) = self
                .candidates
                .iter()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite estimates"))
            {
                self.candidates.remove(&weakest);
            }
        }
    }

    /// The estimate of a Count-Min sketch as a bare [`Estimator`] is the
    /// total stream mass `‖f‖₁` (exact for insertion-only streams), which is
    /// what the heavy-hitters threshold `ε‖f‖₁` needs.
    fn estimate(&self) -> f64 {
        self.total_mass
    }

    fn space_bytes(&self) -> usize {
        self.counters.len() * 8 + self.config.depth * 16 + self.config.candidate_capacity * 16
    }
}

impl PointQueryEstimator for CountMinSketch {
    fn point_estimate(&self, item: u64) -> f64 {
        self.query(item)
    }

    fn candidates(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .candidates
            .keys()
            .map(|&item| (item, self.query(item)))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite estimates"));
        out
    }
}

/// Factory for [`CountMinSketch`] instances.
#[derive(Debug, Clone, Copy)]
pub struct CountMinFactory {
    /// Configuration shared by every built instance.
    pub config: CountMinConfig,
}

impl EstimatorFactory for CountMinFactory {
    type Output = CountMinSketch;

    fn build(&self, seed: u64) -> CountMinSketch {
        CountMinSketch::new(self.config, seed)
    }

    fn name(&self) -> String {
        format!("countmin(w={}, d={})", self.config.width, self.config.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_stream::generator::{Generator, ZipfGenerator};
    use ars_stream::FrequencyVector;

    #[test]
    fn never_underestimates_on_insertion_only_streams() {
        let updates = ZipfGenerator::new(1000, 1.1, 3).take_updates(20_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let mut cm = CountMinSketch::new(CountMinConfig::for_accuracy(0.01, 0.01), 5);
        for &u in &updates {
            cm.update(u);
        }
        for item in 0..50u64 {
            assert!(
                cm.query(item) + 1e-9 >= truth.get(item) as f64,
                "Count-Min must not underestimate item {item}"
            );
        }
    }

    #[test]
    fn overestimate_is_bounded_by_epsilon_l1() {
        let updates = ZipfGenerator::new(1000, 1.1, 7).take_updates(20_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let epsilon = 0.01;
        let mut cm = CountMinSketch::new(CountMinConfig::for_accuracy(epsilon, 0.001), 9);
        for &u in &updates {
            cm.update(u);
        }
        let slack = epsilon * truth.l1();
        let mut violations = 0;
        for item in 0..200u64 {
            if cm.query(item) > truth.get(item) as f64 + slack {
                violations += 1;
            }
        }
        assert!(
            violations <= 2,
            "{violations} items overestimated beyond eps*L1"
        );
    }

    #[test]
    fn heavy_hitters_contains_the_head_of_the_zipf() {
        let updates = ZipfGenerator::new(10_000, 1.3, 11).take_updates(50_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let mut cm = CountMinSketch::new(CountMinConfig::for_accuracy(0.005, 0.001), 13);
        for &u in &updates {
            cm.update(u);
        }
        let threshold = 0.05 * truth.l1();
        for item in truth.l1_heavy_hitters(0.05) {
            assert!(cm.heavy_hitters(threshold).contains(&item));
        }
    }

    #[test]
    fn total_mass_is_exact_for_insertions() {
        let mut cm = CountMinSketch::new(CountMinConfig::for_accuracy(0.1, 0.1), 1);
        for i in 0..1234u64 {
            cm.insert(i % 17);
        }
        assert_eq!(cm.estimate(), 1234.0);
    }

    #[test]
    fn factory_name_and_space() {
        let factory = CountMinFactory {
            config: CountMinConfig::for_accuracy(0.1, 0.1),
        };
        let cm = factory.build(0);
        assert!(factory.name().contains("countmin"));
        assert!(cm.space_bytes() > 0);
    }
}
