//! Exact `F₁` estimation for insertion-only streams.
//!
//! Footnote 3 of the paper notes that `F₁ = Σ_t Δ_t` admits a trivial
//! `O(log n)`-bit deterministic (hence adversarially robust) algorithm in
//! the insertion-only model: keep a counter. This module provides that
//! counter both as a baseline row for Table 1 and as the exact `‖f‖₁`
//! ingredient of the entropy estimators (Section 7), which need
//! `log ‖f‖₁` exactly or to high precision.

use ars_stream::Update;

use crate::{Estimator, EstimatorFactory};

/// Configuration for [`F1Counter`] (no parameters; present for symmetry
/// with the other sketches so generic code can treat all factories alike).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct F1Config;

/// An exact `F₁` counter.
#[derive(Debug, Clone, Default)]
pub struct F1Counter {
    total: i128,
}

impl F1Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Estimator for F1Counter {
    fn update(&mut self, update: Update) {
        self.total += i128::from(update.delta);
    }

    fn estimate(&self) -> f64 {
        self.total as f64
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<i128>()
    }
}

/// Factory for [`F1Counter`] instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct F1Factory;

impl EstimatorFactory for F1Factory {
    type Output = F1Counter;

    fn build(&self, _seed: u64) -> F1Counter {
        F1Counter::new()
    }

    fn name(&self) -> String {
        "f1-counter".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_insertions_exactly() {
        let mut c = F1Counter::new();
        for i in 0..1000u64 {
            c.insert(i % 10);
        }
        assert_eq!(c.estimate(), 1000.0);
    }

    #[test]
    fn handles_weighted_and_negative_updates() {
        let mut c = F1Counter::new();
        c.update(Update::new(1, 500));
        c.update(Update::new(2, -200));
        assert_eq!(c.estimate(), 300.0);
    }

    #[test]
    fn space_is_constant() {
        let mut c = F1Counter::new();
        let before = c.space_bytes();
        for i in 0..10_000u64 {
            c.insert(i);
        }
        assert_eq!(c.space_bytes(), before);
    }

    #[test]
    fn factory_is_deterministic_regardless_of_seed() {
        let f = F1Factory;
        let mut a = f.build(1);
        let mut b = f.build(999);
        for i in 0..100u64 {
            a.insert(i);
            b.insert(i);
        }
        assert_eq!(a.estimate(), b.estimate());
        assert_eq!(f.name(), "f1-counter");
    }
}
