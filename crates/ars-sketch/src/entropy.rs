//! Static (non-robust) empirical entropy estimators (Section 7 ingredients).
//!
//! The paper's robust entropy algorithm (Theorem 7.3) wraps a static
//! additive-ε entropy estimator with sketch switching, using the fact that
//! the exponential of the α-Rényi entropy has a polynomially bounded flip
//! number (Proposition 7.2). Two static estimators are provided:
//!
//! * [`RenyiEntropyEstimator`] — the Harvey–Nelson–Onak reduction
//!   (Proposition 7.1): estimate `F_α` for `α` slightly above 1 with a
//!   p-stable sketch, combine with the exact `F₁` counter, and report
//!   `H_α = (log₂ F_α − α log₂ F₁)/(1 − α)`, which upper-bounds and
//!   converges to the Shannon entropy as `α → 1`. This mirrors the
//!   Clifford–Cosma / \[11\] style sketch the paper cites for the general
//!   insertion-only model.
//! * [`SampledEntropyEstimator`] — a reservoir-sampling plug-in estimator:
//!   sample `k` stream tokens uniformly, report the entropy of the
//!   empirical distribution of the sample. This is the light-weight
//!   random-oracle-model stand-in for the \[23\] estimator (the sample is the
//!   only state, `O(k log n)` bits).

use ars_stream::Update;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::pstable::{PStableConfig, PStableSketch};
use crate::{Estimator, EstimatorFactory};

/// Configuration for [`RenyiEntropyEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenyiEntropyConfig {
    /// The Rényi order `α ∈ (1, 2]` used as a proxy for Shannon entropy.
    pub alpha: f64,
    /// Rows of the underlying p-stable sketch for `F_α`.
    pub rows: usize,
}

impl RenyiEntropyConfig {
    /// Chooses `α` per Proposition 7.1 for additive error ε on streams of
    /// length at most `m`, and sizes the `F_α` sketch accordingly.
    ///
    /// The paper's exact parametrization drives `α − 1` (and hence the
    /// sketch size) to impractically extreme values for very small ε; the
    /// returned configuration caps the sketch rows at a laptop-friendly
    /// bound and is intended for the benchmark harness, which reports the
    /// achieved error empirically.
    #[must_use]
    pub fn for_accuracy(epsilon: f64, stream_length: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let log_m = (stream_length.max(4) as f64).log2();
        let mu = epsilon / (4.0 * log_m);
        let alpha = 1.0 + mu / (16.0 * (1.0 / mu).ln().max(1.0));
        // Relative accuracy needed on F_alpha is Θ(ε (α − 1)); cap the
        // resulting row count so configurations stay runnable (documented
        // constant-factor substitution — the paper's asymptotic sizing is
        // ε^{-5} polylog(n), far beyond laptop scale for small ε).
        let gamma = (epsilon * (alpha - 1.0)).max(1e-4);
        let rows = ((16.0 / (gamma * gamma)).ceil() as usize).clamp(64, 1025) | 1;
        Self { alpha, rows }
    }

    /// A directly parametrized configuration (used by tests and ablations).
    #[must_use]
    pub fn with_alpha(alpha: f64, rows: usize) -> Self {
        assert!(alpha > 1.0 && alpha <= 2.0, "alpha must lie in (1, 2]");
        Self { alpha, rows }
    }
}

/// The Rényi-entropy-based Shannon entropy estimator.
#[derive(Debug, Clone)]
pub struct RenyiEntropyEstimator {
    config: RenyiEntropyConfig,
    f_alpha: PStableSketch,
    /// Exact `F₁` (insertion-only streams): Σ_t Δ_t.
    f1: f64,
}

impl RenyiEntropyEstimator {
    /// Builds the estimator with randomness derived from `seed`.
    #[must_use]
    pub fn new(config: RenyiEntropyConfig, seed: u64) -> Self {
        Self {
            f_alpha: PStableSketch::new(
                PStableConfig {
                    p: config.alpha,
                    rows: config.rows,
                },
                seed,
            ),
            f1: 0.0,
            config,
        }
    }

    /// The Rényi order α in use.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.config.alpha
    }

    /// Estimate of the α-Rényi entropy `H_α` in bits.
    ///
    /// The raw estimate is clamped to the information-theoretically valid
    /// range `[0, log₂ ‖f‖₁]`: early in the stream the `F_α` sketch can be
    /// wildly inaccurate and, divided by the tiny `(1 − α)`, would otherwise
    /// produce astronomically large (or negative) entropy values.
    #[must_use]
    pub fn renyi_estimate(&self) -> f64 {
        if self.f1 <= 0.0 {
            return 0.0;
        }
        let f_alpha = self.f_alpha.estimate().max(f64::MIN_POSITIVE);
        let raw = (f_alpha.log2() - self.config.alpha * self.f1.log2()) / (1.0 - self.config.alpha);
        raw.clamp(0.0, self.f1.max(1.0).log2())
    }
}

impl Estimator for RenyiEntropyEstimator {
    fn update(&mut self, update: Update) {
        self.f_alpha.update(update);
        self.f1 += update.delta as f64;
    }

    /// Reports the Shannon-entropy proxy `H_α` in bits (additive-ε accurate
    /// for `α` chosen as in Proposition 7.1).
    fn estimate(&self) -> f64 {
        self.renyi_estimate()
    }

    fn space_bytes(&self) -> usize {
        self.f_alpha.space_bytes() + 8
    }
}

/// Factory for [`RenyiEntropyEstimator`] instances.
#[derive(Debug, Clone, Copy)]
pub struct RenyiEntropyFactory {
    /// Configuration shared by every built instance.
    pub config: RenyiEntropyConfig,
}

impl EstimatorFactory for RenyiEntropyFactory {
    type Output = RenyiEntropyEstimator;

    fn build(&self, seed: u64) -> RenyiEntropyEstimator {
        RenyiEntropyEstimator::new(self.config, seed)
    }

    fn name(&self) -> String {
        format!(
            "renyi-entropy(alpha={:.4}, rows={})",
            self.config.alpha, self.config.rows
        )
    }
}

/// Configuration for [`SampledEntropyEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledEntropyConfig {
    /// Reservoir size (number of sampled stream tokens).
    pub sample_size: usize,
}

impl SampledEntropyConfig {
    /// Sizes the reservoir for additive error roughly ε on distributions
    /// with effective support `O(1/ε²)` (plug-in estimator heuristic).
    #[must_use]
    pub fn for_accuracy(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        Self {
            sample_size: ((8.0 / (epsilon * epsilon)).ceil() as usize).max(64),
        }
    }
}

/// Reservoir-sampling plug-in entropy estimator.
#[derive(Debug, Clone)]
pub struct SampledEntropyEstimator {
    config: SampledEntropyConfig,
    rng: StdRng,
    /// Sampled stream tokens (item identities, possibly repeated).
    reservoir: Vec<u64>,
    /// Number of unit tokens seen so far.
    tokens_seen: u64,
}

impl SampledEntropyEstimator {
    /// Builds the estimator with sampling randomness derived from `seed`.
    #[must_use]
    pub fn new(config: SampledEntropyConfig, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            reservoir: Vec::with_capacity(config.sample_size),
            tokens_seen: 0,
            config,
        }
    }

    fn offer_token(&mut self, item: u64) {
        self.tokens_seen += 1;
        if self.reservoir.len() < self.config.sample_size {
            self.reservoir.push(item);
            return;
        }
        let j = self.rng.gen_range(0..self.tokens_seen);
        if (j as usize) < self.config.sample_size {
            self.reservoir[j as usize] = item;
        }
    }
}

impl Estimator for SampledEntropyEstimator {
    fn update(&mut self, update: Update) {
        if update.delta <= 0 {
            return; // insertion-only estimator
        }
        // Treat a weighted insertion as that many unit tokens.
        for _ in 0..update.delta {
            self.offer_token(update.item);
        }
    }

    fn estimate(&self) -> f64 {
        if self.reservoir.is_empty() {
            return 0.0;
        }
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &item in &self.reservoir {
            *counts.entry(item).or_insert(0) += 1;
        }
        let k = self.reservoir.len() as f64;
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / k;
                -p * p.log2()
            })
            .sum()
    }

    fn space_bytes(&self) -> usize {
        self.config.sample_size * 8 + 16
    }
}

/// Factory for [`SampledEntropyEstimator`] instances.
#[derive(Debug, Clone, Copy)]
pub struct SampledEntropyFactory {
    /// Configuration shared by every built instance.
    pub config: SampledEntropyConfig,
}

impl EstimatorFactory for SampledEntropyFactory {
    type Output = SampledEntropyEstimator;

    fn build(&self, seed: u64) -> SampledEntropyEstimator {
        SampledEntropyEstimator::new(self.config, seed)
    }

    fn name(&self) -> String {
        format!("sampled-entropy(k={})", self.config.sample_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ars_stream::generator::{Generator, ZipfGenerator};
    use ars_stream::FrequencyVector;

    fn feed<E: Estimator>(estimator: &mut E, updates: &[Update]) {
        for &u in updates {
            estimator.update(u);
        }
    }

    #[test]
    fn renyi_estimator_matches_exact_renyi_entropy() {
        let updates = ZipfGenerator::new(200, 1.2, 3).take_updates(20_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let config = RenyiEntropyConfig::with_alpha(1.25, 2049);
        let mut est = RenyiEntropyEstimator::new(config, 5);
        feed(&mut est, &updates);
        let exact = truth.renyi_entropy(1.25);
        let approx = est.renyi_estimate();
        assert!(
            (exact - approx).abs() < 0.35,
            "H_1.25 exact {exact} vs estimate {approx}"
        );
    }

    #[test]
    fn renyi_estimator_tracks_its_own_target() {
        // The estimator approximates H_alpha; the exact H_alpha is in turn
        // close to the Shannon entropy for alpha near 1 (next test). The
        // achievable additive error is Θ(γ / ((α−1) ln 2)) where γ is the
        // relative error of the F_alpha sketch, so the tolerance here is
        // derived from the configured row count.
        let updates = ZipfGenerator::new(100, 1.0, 7).take_updates(30_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let alpha = 1.1;
        let rows = 4097;
        let config = RenyiEntropyConfig::with_alpha(alpha, rows);
        let mut est = RenyiEntropyEstimator::new(config, 9);
        feed(&mut est, &updates);
        let exact_renyi = truth.renyi_entropy(alpha);
        let approx = est.estimate();
        let gamma = 3.0 * (16.0 / rows as f64).sqrt();
        let tolerance = gamma / ((alpha - 1.0) * std::f64::consts::LN_2) + 0.1;
        assert!(
            (exact_renyi - approx).abs() < tolerance,
            "H_{alpha} exact {exact_renyi} vs estimate {approx} (tolerance {tolerance})"
        );
    }

    #[test]
    fn exact_renyi_entropy_upper_bounds_shannon_for_alpha_above_one() {
        // Proposition 7.1's qualitative content, checked exactly (no sketch):
        // H_alpha <= H and H_alpha -> H as alpha -> 1.
        let updates = ZipfGenerator::new(100, 1.0, 7).take_updates(30_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let shannon = truth.shannon_entropy();
        let near = truth.renyi_entropy(1.001);
        let far = truth.renyi_entropy(1.5);
        assert!(near <= shannon + 1e-6, "H_alpha must not exceed H");
        assert!(far <= near + 1e-9, "H_alpha decreases in alpha");
        assert!(
            (shannon - near).abs() < 0.05,
            "H_1.001 = {near} should be within 0.05 bits of H = {shannon}"
        );
    }

    #[test]
    fn renyi_config_for_accuracy_is_sane() {
        let config = RenyiEntropyConfig::for_accuracy(0.2, 1 << 16);
        assert!(config.alpha > 1.0 && config.alpha < 1.1);
        assert!(config.rows >= 64 && config.rows <= 1026);
    }

    #[test]
    fn sampled_estimator_on_uniform_support() {
        // Uniform over 64 items: entropy = 6 bits.
        let mut est = SampledEntropyEstimator::new(SampledEntropyConfig { sample_size: 4096 }, 3);
        let updates = ZipfGenerator::new(64, 0.01, 11).take_updates(40_000);
        feed(&mut est, &updates);
        let e = est.estimate();
        assert!((e - 6.0).abs() < 0.3, "estimate {e} for ~6-bit entropy");
    }

    #[test]
    fn sampled_estimator_on_point_mass_is_zero() {
        let mut est = SampledEntropyEstimator::new(SampledEntropyConfig::for_accuracy(0.1), 5);
        for _ in 0..10_000 {
            est.insert(7);
        }
        assert_eq!(est.estimate(), 0.0);
    }

    #[test]
    fn sampled_estimator_reservoir_is_bounded() {
        let mut est = SampledEntropyEstimator::new(SampledEntropyConfig { sample_size: 100 }, 9);
        for i in 0..50_000u64 {
            est.insert(i % 1000);
        }
        assert!(est.reservoir.len() <= 100);
        assert_eq!(est.space_bytes(), 100 * 8 + 16);
    }

    #[test]
    fn empty_estimators_report_zero() {
        let renyi = RenyiEntropyEstimator::new(RenyiEntropyConfig::with_alpha(1.1, 65), 0);
        let sampled = SampledEntropyEstimator::new(SampledEntropyConfig::for_accuracy(0.5), 0);
        assert_eq!(renyi.estimate(), 0.0);
        assert_eq!(sampled.estimate(), 0.0);
    }

    #[test]
    fn factories_build_and_name() {
        let rf = RenyiEntropyFactory {
            config: RenyiEntropyConfig::with_alpha(1.2, 129),
        };
        let sf = SampledEntropyFactory {
            config: SampledEntropyConfig::for_accuracy(0.2),
        };
        let _ = rf.build(1);
        let _ = sf.build(1);
        assert!(rf.name().contains("renyi"));
        assert!(sf.name().contains("sampled"));
    }
}
