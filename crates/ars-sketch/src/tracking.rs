//! Strong-tracking wrappers for static sketches (Lemmas 2.2 / 2.3 role).
//!
//! The robustification wrappers of the paper consume *strong-tracking*
//! static algorithms: ones whose estimate is `(1 ± ε)`-correct at **every**
//! step of a fixed stream with probability `1 − δ` (Definition 2.1). The
//! optimal strong-tracking algorithms cited in the paper (\[6\], \[7\]) obtain
//! this with delicate chaining arguments; the standard generic route — the
//! one footnote 1 of the paper describes — is to drive the per-query
//! failure probability low enough to union bound over the `O(ε^{-1} log n)`
//! scales at which the (monotone) quantity can change, which costs an extra
//! `log` factor in space.
//!
//! [`MedianTracking`] implements that generic route: it runs `c` independent
//! copies of any [`EstimatorFactory`] and reports the median estimate. For
//! estimators whose single-copy failure probability (per query) is a
//! constant `< 1/2`, the median of `c = Θ(log(1/δ'))` copies fails with
//! probability `δ'` per query, and choosing `δ' = δ / (ε^{-1} log n)`
//! yields `(ε, δ)` strong tracking for monotone quantities on
//! insertion-only streams.

use ars_stream::Update;

use crate::{Estimator, EstimatorFactory};

/// Configuration for [`MedianTracking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MedianTrackingConfig {
    /// Number of independent copies the median is taken over.
    pub copies: usize,
}

impl MedianTrackingConfig {
    /// Number of copies needed for per-query failure probability `delta`,
    /// assuming each copy errs with probability at most 1/4.
    ///
    /// The copy count grows as `Θ(log 1/δ)` (the Chernoff bound for a
    /// majority of independent constant-failure trials) but is capped at a
    /// laptop-friendly 9 copies: the asymptotic *shape* of every space
    /// bound is preserved while keeping the per-update work of the
    /// composite robust estimators (pool size × copies × sketch size)
    /// tractable for the experiments. The cap is part of the documented
    /// constant-factor substitutions in DESIGN.md.
    #[must_use]
    pub fn for_failure_probability(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0);
        let copies = ((1.5 * (1.0 / delta).ln()).ceil() as usize).clamp(1, 9) | 1;
        Self { copies }
    }

    /// Strong tracking for a monotone quantity over a stream of length `m`
    /// with overall failure probability `delta`: union bound over the
    /// `O(ε^{-1} log m)` scales at which the answer can change by `(1+ε)`.
    #[must_use]
    pub fn for_strong_tracking(epsilon: f64, delta: f64, stream_length: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let scales = ((stream_length.max(2) as f64).ln() / epsilon)
            .ceil()
            .max(1.0);
        Self::for_failure_probability(delta / scales)
    }
}

/// Median-of-copies wrapper turning a constant-failure estimator into a
/// low-failure (strong-tracking) estimator.
#[derive(Debug, Clone)]
pub struct MedianTracking<E> {
    copies: Vec<E>,
}

impl<E: Estimator> MedianTracking<E> {
    /// Builds the wrapper from pre-constructed copies.
    #[must_use]
    pub fn from_copies(copies: Vec<E>) -> Self {
        assert!(!copies.is_empty(), "at least one copy is required");
        Self { copies }
    }

    /// Builds `config.copies` fresh instances from a factory, deriving the
    /// per-copy seeds from `seed`.
    #[must_use]
    pub fn new<F>(factory: &F, config: MedianTrackingConfig, seed: u64) -> Self
    where
        F: EstimatorFactory<Output = E>,
    {
        assert!(config.copies >= 1);
        let copies = (0..config.copies)
            .map(|i| factory.build(seed.wrapping_add(0x9E37_79B9).wrapping_mul(i as u64 + 1)))
            .collect();
        Self { copies }
    }

    /// Number of copies maintained.
    #[must_use]
    pub fn copies(&self) -> usize {
        self.copies.len()
    }
}

impl<E: Estimator> Estimator for MedianTracking<E> {
    fn update(&mut self, update: Update) {
        for copy in &mut self.copies {
            copy.update(update);
        }
    }

    fn estimate(&self) -> f64 {
        let mut estimates: Vec<f64> = self.copies.iter().map(Estimator::estimate).collect();
        estimates.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
        let mid = estimates.len() / 2;
        if estimates.len() % 2 == 1 {
            estimates[mid]
        } else {
            (estimates[mid - 1] + estimates[mid]) / 2.0
        }
    }

    fn space_bytes(&self) -> usize {
        self.copies.iter().map(Estimator::space_bytes).sum()
    }
}

/// A factory wrapping another factory so that every built instance is a
/// [`MedianTracking`] ensemble. This lets the robust wrappers in `ars-core`
/// consume "strong tracking versions" of any static sketch uniformly.
#[derive(Debug, Clone, Copy)]
pub struct MedianTrackingFactory<F> {
    /// The factory producing individual copies.
    pub inner: F,
    /// How many copies each ensemble contains.
    pub config: MedianTrackingConfig,
}

impl<F: EstimatorFactory> EstimatorFactory for MedianTrackingFactory<F> {
    type Output = MedianTracking<F::Output>;

    fn build(&self, seed: u64) -> Self::Output {
        MedianTracking::new(&self.inner, self.config, seed)
    }

    fn name(&self) -> String {
        format!("median[{} x {}]", self.config.copies, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ams::{AmsConfig, AmsFactory};
    use crate::kmv::{KmvConfig, KmvFactory};
    use ars_stream::generator::{Generator, UniformGenerator};
    use ars_stream::FrequencyVector;

    #[test]
    fn config_sizing_is_monotone_in_delta() {
        let loose = MedianTrackingConfig::for_failure_probability(0.1);
        let tight = MedianTrackingConfig::for_failure_probability(1e-6);
        assert!(tight.copies > loose.copies);
        let tracking = MedianTrackingConfig::for_strong_tracking(0.1, 0.05, 1 << 20);
        assert!(tracking.copies >= tight.copies / 4);
    }

    #[test]
    fn median_of_ams_copies_is_accurate() {
        let updates = UniformGenerator::new(1_000, 3).take_updates(20_000);
        let truth: FrequencyVector = updates.iter().copied().collect();
        let factory = AmsFactory {
            config: AmsConfig::single_mean(200),
        };
        let mut ensemble = MedianTracking::new(&factory, MedianTrackingConfig { copies: 9 }, 7);
        for &u in &updates {
            ensemble.update(u);
        }
        let est = ensemble.estimate();
        let f2 = truth.f2();
        assert!(
            ((est - f2) / f2).abs() < 0.15,
            "ensemble estimate {est} vs {f2}"
        );
    }

    #[test]
    fn median_tracking_of_kmv_tracks_the_whole_stream() {
        let updates = UniformGenerator::new(30_000, 5).take_updates(60_000);
        let factory = KmvFactory {
            config: KmvConfig::for_accuracy(0.1),
        };
        let mut ensemble = MedianTracking::new(&factory, MedianTrackingConfig { copies: 7 }, 11);
        let mut truth = FrequencyVector::new();
        let mut worst: f64 = 0.0;
        for &u in &updates {
            truth.apply(u);
            ensemble.update(u);
            let t = truth.f0() as f64;
            if t > 1_000.0 {
                worst = worst.max(((ensemble.estimate() - t) / t).abs());
            }
        }
        assert!(worst < 0.15, "worst-case tracking error {worst}");
    }

    #[test]
    fn space_is_the_sum_of_copies() {
        let factory = KmvFactory {
            config: KmvConfig { k: 64 },
        };
        let single = factory.build(0).space_bytes();
        let ensemble = MedianTracking::new(&factory, MedianTrackingConfig { copies: 5 }, 0);
        assert_eq!(ensemble.space_bytes(), 5 * single);
        assert_eq!(ensemble.copies(), 5);
    }

    #[test]
    fn nested_factory_reports_a_descriptive_name() {
        let factory = MedianTrackingFactory {
            inner: KmvFactory {
                config: KmvConfig { k: 32 },
            },
            config: MedianTrackingConfig { copies: 3 },
        };
        assert!(factory.name().contains("median[3 x kmv"));
        let built = factory.build(9);
        assert_eq!(built.copies(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn empty_ensemble_is_rejected() {
        let _ = MedianTracking::<crate::kmv::KmvSketch>::from_copies(vec![]);
    }
}
