//! Synthetic workload generators.
//!
//! The paper's motivating applications are database query optimizers
//! (distinct-value estimation), self-join size estimation, network traffic
//! heavy hitters and data-skew measurement. The generators in this module
//! produce streams with those shapes so the benchmark harness can
//! regenerate the Table 1 comparisons and the examples can run on realistic
//! data:
//!
//! * [`UniformGenerator`] — items drawn uniformly from `[n]`.
//! * [`ZipfGenerator`] — power-law (skewed) item frequencies, the canonical
//!   heavy-hitters / skew workload.
//! * [`BurstyGenerator`] — a background distribution with planted heavy
//!   items whose frequency bursts during configurable windows.
//! * [`SlidingDistinctGenerator`] — the number of distinct items grows and
//!   then plateaus, exercising trackers whose output changes quickly early
//!   in the stream (large flip-number pressure).
//! * [`BoundedDeletionGenerator`] — α-bounded-deletion streams
//!   (Definition 8.1): insert phases followed by partial deletions.
//! * [`TurnstileWaveGenerator`] — turnstile streams whose `F_p` rises and
//!   falls a configurable number of times, i.e. with a prescribed flip
//!   number (Section 4.3).
//! * [`PacketTraceGenerator`] — a CAIDA-like packet trace: heavy-tailed
//!   flow sizes (Pareto) with bursty per-flow arrivals, the shape of the
//!   network-monitoring workloads the paper motivates with.
//! * [`QueryLogGenerator`] — a query-log shape: zipf-skewed interactive
//!   keys whose share of the traffic swells and fades on a diurnal-style
//!   wave over a uniform batch-traffic floor.
//!
//! Every generator is deterministic given its seed, so experiments are
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::update::{Item, Update};

/// A source of stream updates.
///
/// Generators are infinite (or effectively so); callers take as many
/// updates as the experiment needs via [`Generator::take_updates`].
pub trait Generator {
    /// Produces the next update of the stream.
    fn next_update(&mut self) -> Update;

    /// Convenience: materializes the next `m` updates.
    fn take_updates(&mut self, m: usize) -> Vec<Update> {
        (0..m).map(|_| self.next_update()).collect()
    }
}

impl Generator for Box<dyn Generator> {
    fn next_update(&mut self) -> Update {
        (**self).next_update()
    }
}

impl Generator for Box<dyn Generator + Send> {
    fn next_update(&mut self) -> Update {
        (**self).next_update()
    }
}

/// Items drawn uniformly at random from `[0, domain)`, unit insertions.
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    domain: u64,
    rng: StdRng,
}

impl UniformGenerator {
    /// Creates a uniform generator over `[0, domain)` with the given seed.
    #[must_use]
    pub fn new(domain: u64, seed: u64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        Self {
            domain,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Generator for UniformGenerator {
    fn next_update(&mut self) -> Update {
        Update::insert(self.rng.gen_range(0..self.domain))
    }
}

/// Zipfian (power-law) item distribution: item `i` has probability
/// proportional to `1 / (i + 1)^s`.
///
/// Implemented with a precomputed cumulative table and binary search so that
/// no external distribution crate is needed; the table costs `O(domain)`
/// memory, which is fine for the `n ≤ 2^20` domains used in the experiments.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    cumulative: Vec<f64>,
    rng: StdRng,
}

impl ZipfGenerator {
    /// Creates a Zipf generator over `[0, domain)` with exponent `s > 0`.
    #[must_use]
    pub fn new(domain: u64, exponent: f64, seed: u64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        assert!(exponent > 0.0, "Zipf exponent must be positive");
        let mut cumulative = Vec::with_capacity(domain as usize);
        let mut acc = 0.0;
        for i in 0..domain {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Self {
            cumulative,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn sample(&mut self) -> Item {
        let u: f64 = self.rng.gen();
        // First index whose cumulative probability is >= u.
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1);
        idx as Item
    }
}

impl Generator for ZipfGenerator {
    fn next_update(&mut self) -> Update {
        Update::insert(self.sample())
    }
}

/// A background distribution with planted heavy hitters that burst.
///
/// With probability `heavy_fraction` an update goes to one of the
/// `num_heavy` planted items (chosen uniformly among them); otherwise it is
/// a uniform background item. This produces streams where the planted items
/// are `L_2` heavy hitters by a comfortable margin, the scenario of
/// Section 6.
#[derive(Debug, Clone)]
pub struct BurstyGenerator {
    domain: u64,
    num_heavy: u64,
    heavy_fraction: f64,
    rng: StdRng,
}

impl BurstyGenerator {
    /// Creates a bursty generator.
    ///
    /// `heavy_fraction` is the probability that an update hits one of the
    /// `num_heavy` planted items `{0, …, num_heavy − 1}`.
    #[must_use]
    pub fn new(domain: u64, num_heavy: u64, heavy_fraction: f64, seed: u64) -> Self {
        assert!(
            domain > num_heavy,
            "domain must exceed the number of heavy items"
        );
        assert!((0.0..=1.0).contains(&heavy_fraction));
        Self {
            domain,
            num_heavy,
            heavy_fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The planted heavy items.
    #[must_use]
    pub fn heavy_items(&self) -> Vec<Item> {
        (0..self.num_heavy).collect()
    }
}

impl Generator for BurstyGenerator {
    fn next_update(&mut self) -> Update {
        let item = if self.rng.gen::<f64>() < self.heavy_fraction {
            self.rng.gen_range(0..self.num_heavy)
        } else {
            self.rng.gen_range(self.num_heavy..self.domain)
        };
        Update::insert(item)
    }
}

/// Streams whose number of distinct elements grows steadily and then
/// plateaus into repetitions of already-seen items.
///
/// The first `fresh_items` updates introduce new identifiers; afterwards the
/// generator re-draws uniformly from the already-seen set. This stresses
/// `F_0` trackers: the answer changes at every step early on (maximal flip
/// pressure) and then stabilizes.
#[derive(Debug, Clone)]
pub struct SlidingDistinctGenerator {
    fresh_items: u64,
    emitted: u64,
    rng: StdRng,
}

impl SlidingDistinctGenerator {
    /// Creates a generator that introduces `fresh_items` distinct items and
    /// then recycles them.
    #[must_use]
    pub fn new(fresh_items: u64, seed: u64) -> Self {
        assert!(fresh_items > 0);
        Self {
            fresh_items,
            emitted: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Generator for SlidingDistinctGenerator {
    fn next_update(&mut self) -> Update {
        let item = if self.emitted < self.fresh_items {
            self.emitted
        } else {
            self.rng.gen_range(0..self.fresh_items)
        };
        self.emitted += 1;
        Update::insert(item)
    }
}

/// α-bounded-deletion streams: repeated insert/delete phases that respect
/// Definition 8.1.
///
/// Each cycle inserts `phase_length` unit updates over a fresh block of
/// items and then deletes a `deletion_fraction ≤ 1 − 1/α` fraction of them,
/// so the signed mass never drops below `1/α` of the absolute mass.
#[derive(Debug, Clone)]
pub struct BoundedDeletionGenerator {
    phase_length: u64,
    deletion_fraction: f64,
    /// Items inserted so far that have not been deleted yet (across phases).
    pending: Vec<Item>,
    /// Number of insertions made in the current insert phase.
    inserted_this_phase: u64,
    /// Number of deletions still owed in the current deletion phase.
    deletions_remaining: u64,
    next_item: Item,
    rng: StdRng,
}

impl BoundedDeletionGenerator {
    /// Creates a bounded-deletion generator for the given α.
    ///
    /// The generator deletes at most a `(1 − 1/α)` fraction of each phase,
    /// guaranteeing the `F_1` (and, for unit updates, every `F_p`)
    /// bounded-deletion invariant.
    #[must_use]
    pub fn new(alpha: f64, phase_length: u64, seed: u64) -> Self {
        assert!(alpha >= 1.0);
        assert!(phase_length > 0);
        // Deleting a fraction x of every phase keeps the cumulative ratio
        // F_1(f)/F_1(h) at (1 − x)/(1 + x); requiring this to stay at least
        // 1/α gives x ≤ (α − 1)/(α + 1). A small safety margin keeps
        // floating-point rounding in the validator from flagging boundary
        // cases.
        let deletion_fraction = (alpha - 1.0) / (alpha + 1.0) * 0.95;
        Self {
            phase_length,
            deletion_fraction,
            pending: Vec::new(),
            inserted_this_phase: 0,
            deletions_remaining: 0,
            next_item: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Generator for BoundedDeletionGenerator {
    fn next_update(&mut self) -> Update {
        if self.deletions_remaining > 0 && !self.pending.is_empty() {
            self.deletions_remaining -= 1;
            let idx = self.rng.gen_range(0..self.pending.len());
            let item = self.pending.swap_remove(idx);
            return Update::delete(item);
        }
        if self.inserted_this_phase >= self.phase_length {
            // Switch to a deletion phase: delete a bounded fraction of the
            // insertions made in this phase only, so the cumulative ratio
            // F_1(f)/F_1(h) stays above 1/alpha.
            self.inserted_this_phase = 0;
            self.deletions_remaining =
                ((self.phase_length as f64) * self.deletion_fraction).floor() as u64;
            if self.deletions_remaining > 0 && !self.pending.is_empty() {
                return self.next_update();
            }
        }
        let item = self.next_item;
        self.next_item += 1;
        self.inserted_this_phase += 1;
        self.pending.push(item);
        Update::insert(item)
    }
}

/// Turnstile streams whose `F_p` rises to a peak and falls back close to
/// zero a prescribed number of times.
///
/// Each "wave" inserts `wave_length` unit updates over a fresh block of
/// items and then deletes them all, so the `F_p` flip number of the stream
/// is `Θ(waves · ε^{-1} log(wave_length))` — the bounded-flip-number regime
/// of Theorem 4.3.
#[derive(Debug, Clone)]
pub struct TurnstileWaveGenerator {
    wave_length: u64,
    /// Items inserted in the current wave, to be deleted in LIFO order.
    inserted: Vec<Item>,
    deleting: bool,
    next_item: Item,
}

impl TurnstileWaveGenerator {
    /// Creates a wave generator with the given wave length.
    #[must_use]
    pub fn new(wave_length: u64) -> Self {
        assert!(wave_length > 0);
        Self {
            wave_length,
            inserted: Vec::new(),
            deleting: false,
            next_item: 0,
        }
    }
}

impl Generator for TurnstileWaveGenerator {
    fn next_update(&mut self) -> Update {
        if self.deleting {
            if let Some(item) = self.inserted.pop() {
                if self.inserted.is_empty() {
                    self.deleting = false;
                }
                return Update::delete(item);
            }
            self.deleting = false;
        }
        let item = self.next_item;
        self.next_item += 1;
        self.inserted.push(item);
        if self.inserted.len() as u64 >= self.wave_length {
            self.deleting = true;
        }
        Update::insert(item)
    }
}

/// A CAIDA-like packet trace: a fixed-size pool of concurrent flows whose
/// sizes are heavy-tailed (Pareto) and whose packets arrive in bursts.
///
/// Each update is one packet attributed to a flow identifier (the stand-in
/// for a hashed 5-tuple). With probability `burst` the next packet belongs
/// to the same flow as the previous one — the back-to-back packet trains of
/// real traces — otherwise a uniformly random active flow sends. A flow
/// that has exhausted its packet budget is replaced by a fresh flow with a
/// fresh Pareto-distributed size, so a small number of elephant flows carry
/// most of the packets while a churning tail of mice keeps the distinct
/// count moving.
#[derive(Debug, Clone)]
pub struct PacketTraceGenerator {
    domain: u64,
    tail_exponent: f64,
    burst: f64,
    /// `(flow id, packets remaining)` for every concurrently active flow.
    active: Vec<(Item, u64)>,
    /// Index into `active` of the flow the previous packet belonged to.
    current: usize,
    rng: StdRng,
}

impl PacketTraceGenerator {
    /// Largest flow size the Pareto sampler may return, so a single draw
    /// near `u → 0` cannot freeze the trace on one flow forever.
    const MAX_FLOW_PACKETS: u64 = 100_000;

    /// Creates a packet-trace generator over flow ids `[0, domain)` with
    /// `active_flows` concurrent flows, Pareto tail exponent
    /// `tail_exponent > 0` (smaller = heavier elephants) and per-flow burst
    /// probability `burst ∈ [0, 1)`.
    #[must_use]
    pub fn new(
        domain: u64,
        active_flows: usize,
        tail_exponent: f64,
        burst: f64,
        seed: u64,
    ) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        assert!(active_flows > 0, "need at least one active flow");
        assert!(tail_exponent > 0.0, "Pareto tail exponent must be positive");
        assert!((0.0..1.0).contains(&burst), "burst must be in [0, 1)");
        let mut generator = Self {
            domain,
            tail_exponent,
            burst,
            active: Vec::with_capacity(active_flows),
            current: 0,
            rng: StdRng::seed_from_u64(seed),
        };
        for _ in 0..active_flows {
            let flow = generator.fresh_flow();
            generator.active.push(flow);
        }
        generator
    }

    /// Draws a fresh flow: a uniform identifier and a Pareto(`tail`) size.
    fn fresh_flow(&mut self) -> (Item, u64) {
        let id = self.rng.gen_range(0..self.domain);
        // Inverse-CDF Pareto with x_min = 1: size = ceil(u^{-1/alpha}).
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let size = u.powf(-1.0 / self.tail_exponent).ceil() as u64;
        (id, size.clamp(1, Self::MAX_FLOW_PACKETS))
    }
}

impl Generator for PacketTraceGenerator {
    fn next_update(&mut self) -> Update {
        if self.rng.gen::<f64>() >= self.burst {
            self.current = self.rng.gen_range(0..self.active.len() as u64) as usize;
        }
        let (id, remaining) = self.active[self.current];
        if remaining > 1 {
            self.active[self.current].1 = remaining - 1;
        } else {
            let fresh = self.fresh_flow();
            self.active[self.current] = fresh;
        }
        Update::insert(id)
    }
}

/// A query-log shape: zipf-skewed interactive keys riding a diurnal-style
/// wave over a uniform batch-traffic floor.
///
/// Real query logs mix a skewed interactive workload (popular entities,
/// trending queries) with flat background traffic (crawlers, batch jobs),
/// and the interactive share rises and falls with the day. Here the stream
/// position plays the clock: update `t` is drawn from the zipf head with
/// probability `½(1 + sin(2πt / wave_period))` — peaking once and
/// bottoming out once per period — and uniformly from `[0, domain)`
/// otherwise. Trackers therefore face alternating regimes of concentrated
/// heavy hitters and fast-growing distinct counts.
#[derive(Debug, Clone)]
pub struct QueryLogGenerator {
    domain: u64,
    wave_period: u64,
    emitted: u64,
    zipf: ZipfGenerator,
    rng: StdRng,
}

impl QueryLogGenerator {
    /// Creates a query-log generator over `[0, domain)` with zipf exponent
    /// `exponent > 0` for the interactive head and one diurnal cycle every
    /// `wave_period` updates.
    #[must_use]
    pub fn new(domain: u64, exponent: f64, wave_period: u64, seed: u64) -> Self {
        assert!(domain > 0, "domain must be non-empty");
        assert!(wave_period > 0, "wave period must be positive");
        Self {
            domain,
            wave_period,
            emitted: 0,
            zipf: ZipfGenerator::new(domain, exponent, seed ^ 0x9E37_79B9_7F4A_7C15),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The interactive (zipf) share of the traffic at stream position `t`.
    fn interactive_share(&self, t: u64) -> f64 {
        let phase =
            2.0 * std::f64::consts::PI * (t % self.wave_period) as f64 / self.wave_period as f64;
        0.5 * (1.0 + phase.sin())
    }
}

impl Generator for QueryLogGenerator {
    fn next_update(&mut self) -> Update {
        let share = self.interactive_share(self.emitted);
        self.emitted += 1;
        if self.rng.gen::<f64>() < share {
            self.zipf.next_update()
        } else {
            Update::insert(self.rng.gen_range(0..self.domain))
        }
    }
}

/// A declarative description of a benchmark workload, recorded by the
/// bench harness so reports state exactly which stream each row used.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Uniform items over `[0, domain)`.
    Uniform {
        /// Domain size `n`.
        domain: u64,
    },
    /// Zipfian items over `[0, domain)` with the given exponent.
    Zipf {
        /// Domain size `n`.
        domain: u64,
        /// Skew exponent `s`.
        exponent: f64,
    },
    /// Background + planted heavy hitters.
    Bursty {
        /// Domain size `n`.
        domain: u64,
        /// Number of planted heavy items.
        num_heavy: u64,
        /// Probability an update hits a heavy item.
        heavy_fraction: f64,
    },
    /// Growing-then-plateauing distinct items.
    SlidingDistinct {
        /// Number of distinct items introduced before recycling.
        fresh_items: u64,
    },
    /// α-bounded-deletion phases.
    BoundedDeletion {
        /// Deletion parameter α.
        alpha: f64,
        /// Updates per insert phase.
        phase_length: u64,
    },
    /// Insert-then-delete waves (turnstile).
    TurnstileWave {
        /// Updates per wave.
        wave_length: u64,
    },
    /// CAIDA-like packet trace: heavy-tailed flows with bursty arrivals.
    PacketTrace {
        /// Flow-identifier space size `n`.
        domain: u64,
        /// Concurrently active flows.
        active_flows: usize,
        /// Pareto tail exponent of flow sizes (smaller = heavier).
        tail_exponent: f64,
        /// Probability the next packet continues the previous flow.
        burst: f64,
    },
    /// Query-log shape: zipf keys on a diurnal-style traffic wave.
    QueryLog {
        /// Key space size `n`.
        domain: u64,
        /// Zipf exponent of the interactive head.
        exponent: f64,
        /// Updates per diurnal cycle.
        wave_period: u64,
    },
}

impl WorkloadSpec {
    /// Instantiates the described generator with a seed.
    #[must_use]
    pub fn build(&self, seed: u64) -> Box<dyn Generator> {
        match *self {
            Self::Uniform { domain } => Box::new(UniformGenerator::new(domain, seed)),
            Self::Zipf { domain, exponent } => Box::new(ZipfGenerator::new(domain, exponent, seed)),
            Self::Bursty {
                domain,
                num_heavy,
                heavy_fraction,
            } => Box::new(BurstyGenerator::new(
                domain,
                num_heavy,
                heavy_fraction,
                seed,
            )),
            Self::SlidingDistinct { fresh_items } => {
                Box::new(SlidingDistinctGenerator::new(fresh_items, seed))
            }
            Self::BoundedDeletion {
                alpha,
                phase_length,
            } => Box::new(BoundedDeletionGenerator::new(alpha, phase_length, seed)),
            Self::TurnstileWave { wave_length } => {
                Box::new(TurnstileWaveGenerator::new(wave_length))
            }
            Self::PacketTrace {
                domain,
                active_flows,
                tail_exponent,
                burst,
            } => Box::new(PacketTraceGenerator::new(
                domain,
                active_flows,
                tail_exponent,
                burst,
                seed,
            )),
            Self::QueryLog {
                domain,
                exponent,
                wave_period,
            } => Box::new(QueryLogGenerator::new(domain, exponent, wave_period, seed)),
        }
    }

    /// A short human-readable label for tables.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Self::Uniform { domain } => format!("uniform(n={domain})"),
            Self::Zipf { domain, exponent } => format!("zipf(n={domain}, s={exponent})"),
            Self::Bursty {
                domain, num_heavy, ..
            } => format!("bursty(n={domain}, heavy={num_heavy})"),
            Self::SlidingDistinct { fresh_items } => format!("sliding(f={fresh_items})"),
            Self::BoundedDeletion { alpha, .. } => format!("bounded-del(alpha={alpha})"),
            Self::TurnstileWave { wave_length } => format!("wave(len={wave_length})"),
            Self::PacketTrace {
                domain,
                active_flows,
                ..
            } => format!("packet-trace(n={domain}, flows={active_flows})"),
            Self::QueryLog {
                domain,
                exponent,
                wave_period,
            } => format!("query-log(n={domain}, s={exponent}, day={wave_period})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequency::FrequencyVector;
    use crate::model::{StreamModel, StreamValidator};

    #[test]
    fn uniform_generator_stays_in_domain_and_is_deterministic() {
        let mut a = UniformGenerator::new(100, 7);
        let mut b = UniformGenerator::new(100, 7);
        let ua = a.take_updates(1000);
        let ub = b.take_updates(1000);
        assert_eq!(ua, ub, "same seed must give the same stream");
        assert!(ua.iter().all(|u| u.item < 100 && u.delta == 1));
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let ua = UniformGenerator::new(1000, 1).take_updates(100);
        let ub = UniformGenerator::new(1000, 2).take_updates(100);
        assert_ne!(ua, ub);
    }

    #[test]
    fn zipf_generator_is_skewed_toward_small_items() {
        let mut g = ZipfGenerator::new(1000, 1.2, 3);
        let updates = g.take_updates(20_000);
        let f: FrequencyVector = updates.into_iter().collect();
        // Item 0 should be by far the most frequent.
        let max_item = f
            .iter()
            .max_by_key(|&(_, c)| c)
            .map(|(i, _)| i)
            .expect("non-empty");
        assert_eq!(max_item, 0);
        // and should dominate a mid-range item.
        assert!(f.get(0) > 10 * f.get(500).max(1));
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let g = ZipfGenerator::new(50, 1.0, 0);
        let last = *g.cumulative.last().unwrap();
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bursty_generator_plants_heavy_hitters() {
        let mut g = BurstyGenerator::new(10_000, 5, 0.5, 11);
        let updates = g.take_updates(50_000);
        let f: FrequencyVector = updates.into_iter().collect();
        let hh = f.l2_heavy_hitters(0.05);
        for item in g.heavy_items() {
            assert!(
                hh.contains(&item),
                "planted item {item} should be an L2 heavy hitter"
            );
        }
    }

    #[test]
    fn sliding_distinct_grows_then_plateaus() {
        let mut g = SlidingDistinctGenerator::new(500, 13);
        let updates = g.take_updates(2000);
        let mut f = FrequencyVector::new();
        f.apply_all(&updates[..500]);
        assert_eq!(f.f0(), 500, "first phase introduces only fresh items");
        f.apply_all(&updates[500..]);
        assert_eq!(f.f0(), 500, "second phase recycles existing items");
    }

    #[test]
    fn bounded_deletion_generator_respects_the_model() {
        let alpha = 2.0;
        let mut g = BoundedDeletionGenerator::new(alpha, 200, 5);
        let updates = g.take_updates(5000);
        let mut v = StreamValidator::new(StreamModel::bounded_deletion(alpha, 1.0));
        v.apply_all(&updates)
            .expect("generator must stay within the bounded-deletion model");
        assert!(
            updates.iter().any(Update::is_deletion),
            "should actually delete"
        );
    }

    #[test]
    fn turnstile_wave_generator_returns_to_empty() {
        let mut g = TurnstileWaveGenerator::new(50);
        // One full wave = 50 inserts + 50 deletes.
        let updates = g.take_updates(100);
        let f: FrequencyVector = updates.iter().copied().collect();
        assert_eq!(f.f0(), 0, "after a full wave the vector is empty");
        let mid: FrequencyVector = updates[..50].iter().copied().collect();
        assert_eq!(mid.f0(), 50);
    }

    #[test]
    fn workload_spec_round_trips_and_builds() {
        let specs = vec![
            WorkloadSpec::Uniform { domain: 10 },
            WorkloadSpec::Zipf {
                domain: 10,
                exponent: 1.1,
            },
            WorkloadSpec::Bursty {
                domain: 100,
                num_heavy: 2,
                heavy_fraction: 0.3,
            },
            WorkloadSpec::SlidingDistinct { fresh_items: 5 },
            WorkloadSpec::BoundedDeletion {
                alpha: 2.0,
                phase_length: 10,
            },
            WorkloadSpec::TurnstileWave { wave_length: 4 },
            WorkloadSpec::PacketTrace {
                domain: 1 << 12,
                active_flows: 8,
                tail_exponent: 1.3,
                burst: 0.5,
            },
            WorkloadSpec::QueryLog {
                domain: 1 << 10,
                exponent: 1.1,
                wave_period: 32,
            },
        ];
        for spec in specs {
            let mut g = spec.build(42);
            let updates = g.take_updates(64);
            assert_eq!(updates.len(), 64);
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn packet_trace_is_heavy_tailed_bursty_and_deterministic() {
        let domain = 1 << 16;
        let mut a = PacketTraceGenerator::new(domain, 32, 1.2, 0.6, 21);
        let mut b = PacketTraceGenerator::new(domain, 32, 1.2, 0.6, 21);
        let ua = a.take_updates(50_000);
        assert_eq!(ua, b.take_updates(50_000), "same seed, same trace");
        assert!(ua.iter().all(|u| u.item < domain && u.delta == 1));
        let f: FrequencyVector = ua.iter().copied().collect();
        // Heavy tail: the largest flow should carry far more packets than
        // a typical flow (mean = total / distinct).
        let top = f.iter().map(|(_, c)| c).max().unwrap();
        let mean = 50_000 / f.f0().max(1);
        assert!(
            top as u64 > 20 * mean,
            "top flow {top} should dwarf the mean flow size {mean}"
        );
        // Bursts: consecutive packets repeat the same flow far more often
        // than independent draws from this distribution would.
        let repeats = ua.windows(2).filter(|w| w[0].item == w[1].item).count();
        assert!(
            repeats as f64 / ua.len() as f64 > 0.3,
            "burst trains should make ~burst of adjacent packets same-flow"
        );
    }

    #[test]
    fn query_log_head_share_follows_the_diurnal_wave() {
        let period = 8_192u64;
        let mut g = QueryLogGenerator::new(1 << 16, 1.3, period, 9);
        let updates = g.take_updates(2 * period as usize);
        let head_share = |slice: &[Update]| {
            slice.iter().filter(|u| u.item < 64).count() as f64 / slice.len() as f64
        };
        // sin peaks in the first half-period and troughs in the second.
        let peak = head_share(&updates[..(period / 2) as usize]);
        let trough = head_share(&updates[(period / 2) as usize..period as usize]);
        assert!(
            peak > 2.0 * trough.max(0.01),
            "zipf head share at peak ({peak:.3}) should dominate the trough ({trough:.3})"
        );
        // And the second day looks like the first.
        let peak2 = head_share(&updates[period as usize..(period + period / 2) as usize]);
        assert!((peak - peak2).abs() < 0.1, "daily cycle should repeat");
    }
}
