//! Exact reference oracles used to score streaming estimators.
//!
//! The robust algorithms in `ars-core` promise a `(1 ± ε)` *tracking*
//! guarantee: the estimate must be correct at **every** point `t ∈ [m]` of
//! the stream (Definition 2.1, strong tracking). To verify that empirically
//! we need the exact value of the tracked function at every step, which is
//! what [`ExactOracle`] and [`TrackingOracle`] provide.

use crate::frequency::FrequencyVector;
use crate::update::{Item, Update};

/// The query an oracle (and the estimators under test) answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Number of distinct elements `F_0`.
    F0,
    /// Frequency moment `F_p = Σ |f_i|^p`.
    Fp(
        /// Moment order `p > 0`.
        f64,
    ),
    /// `L_p` norm `‖f‖_p`.
    Lp(
        /// Norm order `p > 0`.
        f64,
    ),
    /// Empirical Shannon entropy (bits).
    ShannonEntropy,
    /// Point query: the frequency of one item.
    PointQuery(
        /// The queried item.
        Item,
    ),
}

/// An exactly-maintained oracle answering [`Query`] values over the stream
/// prefix seen so far.
#[derive(Debug, Clone, Default)]
pub struct ExactOracle {
    frequency: FrequencyVector,
}

impl ExactOracle {
    /// Creates an empty oracle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one update.
    pub fn update(&mut self, update: Update) {
        self.frequency.apply(update);
    }

    /// Feeds a slice of updates.
    pub fn update_all(&mut self, updates: &[Update]) {
        self.frequency.apply_all(updates);
    }

    /// Access to the exact frequency vector.
    #[must_use]
    pub fn frequency(&self) -> &FrequencyVector {
        &self.frequency
    }

    /// Answers a query exactly on the current prefix.
    #[must_use]
    pub fn answer(&self, query: Query) -> f64 {
        match query {
            Query::F0 => self.frequency.f0() as f64,
            Query::Fp(p) => self.frequency.fp(p),
            Query::Lp(p) => self.frequency.lp(p),
            Query::ShannonEntropy => self.frequency.shannon_entropy(),
            Query::PointQuery(item) => self.frequency.get(item) as f64,
        }
    }
}

/// Records the exact answer to a query after every update, producing the
/// ground-truth sequence `g(f^{(1)}), …, g(f^{(m)})` used for error scoring
/// and for empirical flip-number measurement.
#[derive(Debug, Clone)]
pub struct TrackingOracle {
    oracle: ExactOracle,
    query: Query,
    history: Vec<f64>,
}

impl TrackingOracle {
    /// Creates a tracking oracle for the given query.
    #[must_use]
    pub fn new(query: Query) -> Self {
        Self {
            oracle: ExactOracle::new(),
            query,
            history: Vec::new(),
        }
    }

    /// Feeds one update and records the exact answer after it.
    pub fn update(&mut self, update: Update) -> f64 {
        self.oracle.update(update);
        let value = self.oracle.answer(self.query);
        self.history.push(value);
        value
    }

    /// Feeds a slice of updates.
    pub fn update_all(&mut self, updates: &[Update]) {
        for &u in updates {
            self.update(u);
        }
    }

    /// The exact answer after the most recent update (`0` before any).
    #[must_use]
    pub fn current(&self) -> f64 {
        self.history.last().copied().unwrap_or(0.0)
    }

    /// The full ground-truth sequence, one entry per update.
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// The underlying exact oracle.
    #[must_use]
    pub fn oracle(&self) -> &ExactOracle {
        &self.oracle
    }

    /// Scores an estimate sequence against the recorded ground truth:
    /// returns the maximum relative error `max_t |R_t − g_t| / |g_t|`
    /// over steps where the ground truth is non-zero.
    ///
    /// # Panics
    /// Panics if the estimate sequence length differs from the history.
    #[must_use]
    pub fn max_relative_error(&self, estimates: &[f64]) -> f64 {
        assert_eq!(
            estimates.len(),
            self.history.len(),
            "one estimate per update is required"
        );
        self.history
            .iter()
            .zip(estimates)
            .filter(|(&g, _)| g != 0.0)
            .map(|(&g, &r)| ((r - g) / g).abs())
            .fold(0.0, f64::max)
    }

    /// Scores an estimate sequence by maximum *additive* error
    /// `max_t |R_t − g_t|` (used for entropy, which the paper approximates
    /// additively).
    #[must_use]
    pub fn max_additive_error(&self, estimates: &[f64]) -> f64 {
        assert_eq!(estimates.len(), self.history.len());
        self.history
            .iter()
            .zip(estimates)
            .map(|(&g, &r)| (r - g).abs())
            .fold(0.0, f64::max)
    }

    /// Fraction of steps where the estimate is within `(1 ± epsilon)` of the
    /// ground truth (steps with zero ground truth count as correct iff the
    /// estimate is within `epsilon` absolutely).
    #[must_use]
    pub fn tracking_success_rate(&self, estimates: &[f64], epsilon: f64) -> f64 {
        assert_eq!(estimates.len(), self.history.len());
        if self.history.is_empty() {
            return 1.0;
        }
        let good = self
            .history
            .iter()
            .zip(estimates)
            .filter(|(&g, &r)| {
                if g == 0.0 {
                    r.abs() <= epsilon
                } else {
                    (r - g).abs() <= epsilon * g.abs()
                }
            })
            .count();
        good as f64 / self.history.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_oracle_answers_all_queries() {
        let mut o = ExactOracle::new();
        o.update_all(&[
            Update::insert(1),
            Update::insert(1),
            Update::insert(2),
            Update::insert(3),
        ]);
        assert_eq!(o.answer(Query::F0), 3.0);
        assert_eq!(o.answer(Query::Fp(2.0)), 4.0 + 1.0 + 1.0);
        assert!((o.answer(Query::Lp(2.0)) - 6.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(o.answer(Query::PointQuery(1)), 2.0);
        assert_eq!(o.answer(Query::PointQuery(99)), 0.0);
        assert!(o.answer(Query::ShannonEntropy) > 0.0);
    }

    #[test]
    fn tracking_oracle_records_history() {
        let mut t = TrackingOracle::new(Query::F0);
        t.update(Update::insert(1));
        t.update(Update::insert(1));
        t.update(Update::insert(2));
        assert_eq!(t.history(), &[1.0, 1.0, 2.0]);
        assert_eq!(t.current(), 2.0);
    }

    #[test]
    fn relative_error_scoring() {
        let mut t = TrackingOracle::new(Query::F0);
        t.update_all(&[Update::insert(1), Update::insert(2)]);
        // truth = [1, 2]; estimates = [1.1, 1.8] -> errors 0.1 and 0.1.
        let err = t.max_relative_error(&[1.1, 1.8]);
        assert!((err - 0.1).abs() < 1e-9);
    }

    #[test]
    fn additive_error_scoring() {
        let mut t = TrackingOracle::new(Query::ShannonEntropy);
        t.update_all(&[Update::insert(1), Update::insert(2)]);
        let truth = t.history().to_vec();
        let shifted: Vec<f64> = truth.iter().map(|v| v + 0.25).collect();
        assert!((t.max_additive_error(&shifted) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tracking_success_rate_counts_good_steps() {
        let mut t = TrackingOracle::new(Query::F0);
        t.update_all(&[Update::insert(1), Update::insert(2), Update::insert(3)]);
        // truth = [1,2,3]; second estimate is off by more than 10%.
        let rate = t.tracking_success_rate(&[1.0, 3.0, 3.1], 0.1);
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one estimate per update")]
    fn mismatched_lengths_panic() {
        let mut t = TrackingOracle::new(Query::F0);
        t.update(Update::insert(1));
        let _ = t.max_relative_error(&[]);
    }
}
