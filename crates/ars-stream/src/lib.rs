//! Stream model substrate for the adversarially robust streaming framework.
//!
//! This crate provides everything the sketches and the robustness wrappers
//! need to talk about data streams, following Section 2 of
//! *"A Framework for Adversarially Robust Streaming Algorithms"*
//! (Ben-Eliezer, Jayaram, Woodruff, Yogev — PODS 2020):
//!
//! * [`Update`] — a stream update `(a_t, Δ_t)` over the domain `[n]`.
//! * [`FrequencyVector`] — the (sparse) frequency vector `f ∈ ℝ^n` with
//!   `f_i = Σ_{t : a_t = i} Δ_t`, plus exact statistics (`F_p`, `F_0`,
//!   entropy, heavy hitters) used as ground truth by tests and benches.
//! * [`StreamModel`] / [`StreamValidator`] — the insertion-only, turnstile
//!   and α-bounded-deletion models and per-update validation of the model
//!   constraints, priced per model through [`ValidationTier`]s: `O(1)`
//!   stateless checks where the model admits them, coordinate-incremental
//!   exact moments where it does not.
//! * [`generator`] — synthetic workload generators (uniform, Zipfian,
//!   bursty, sliding-window distinct, bounded-deletion, …) used by the
//!   example applications and by the benchmark harness that regenerates the
//!   paper's Table 1 rows.
//! * [`exact::ExactOracle`] — an exact tracking oracle used to score the
//!   approximation error of every estimator at every point in the stream.
//!
//! The crate is deliberately dependency-light (only the in-tree `rand`
//! stub for the generators) and contains no approximation algorithms:
//! those live in `ars-sketch` (static sketches) and `ars-core` (robust
//! wrappers).
//!
//! # Paper map
//!
//! | Module | Paper section / result it supports |
//! |---|---|
//! | [`update`], [`frequency`] | Section 2 stream model, `f ∈ ℝ^n`, exact `F_p`/`F₀`/entropy ground truth |
//! | [`model`] | the promises the theorems are conditional on: insertion-only (Sections 4–7), λ-flip turnstile (Theorem 4.3), α-bounded deletions (Section 8) |
//! | [`exact`] | the tracking oracle scoring `(1 ± ε)` guarantees at every stream point |
//! | [`generator`] | reference workloads behind Table 1 and the E1–E15 experiments |
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod frequency;
pub mod generator;
pub mod model;
pub mod update;

pub use exact::{ExactOracle, TrackingOracle};
pub use frequency::FrequencyVector;
pub use model::{StreamError, StreamModel, StreamValidator, ValidationTier};
pub use update::{Delta, Item, Update};

/// Convenience result alias for stream-model operations.
pub type Result<T> = std::result::Result<T, StreamError>;
