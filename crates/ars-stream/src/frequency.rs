//! The frequency vector `f ∈ ℝ^n` of a stream and its exact statistics.
//!
//! The frequency vector is the central object every streaming query is
//! defined over: `f_i = Σ_{t : a_t = i} Δ_t`. This module stores it sparsely
//! and exposes *exact* computations of the quantities the paper's
//! algorithms approximate — `F_p` moments, `F_0`, the empirical Shannon and
//! Rényi entropies, `L_p` norms and heavy hitters — so tests and benchmarks
//! can score approximation error against ground truth.

use std::collections::HashMap;

use crate::update::{Delta, Item, Update};

/// A sparse, exactly-maintained frequency vector.
///
/// Zero entries are pruned eagerly so that `support_size` (= `F_0`) is just
/// the map's length. All statistics are computed exactly in one pass over
/// the support; this is the ground-truth oracle, not a sketch, so the cost
/// is linear in the number of distinct items, which is fine for the
/// laptop-scale synthetic workloads used throughout the repository.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrequencyVector {
    counts: HashMap<Item, Delta>,
    /// Total number of updates applied (stream length consumed so far).
    updates_applied: u64,
    /// Sum of all deltas, i.e. `F_1` for insertion-only streams.
    total_delta: i128,
    /// Sum of |delta| over all updates (the absolute-value stream mass).
    total_magnitude: u128,
}

impl FrequencyVector {
    /// Creates an empty frequency vector (the all-zeros vector `f^{(0)}`).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty frequency vector with capacity for `n` distinct items.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            counts: HashMap::with_capacity(n),
            ..Self::default()
        }
    }

    /// Applies a single update `(a_t, Δ_t)`.
    pub fn apply(&mut self, update: Update) {
        self.updates_applied += 1;
        self.total_delta += i128::from(update.delta);
        self.total_magnitude += u128::from(update.magnitude());
        if update.delta == 0 {
            return;
        }
        let entry = self.counts.entry(update.item).or_insert(0);
        *entry += update.delta;
        if *entry == 0 {
            self.counts.remove(&update.item);
        }
    }

    /// Applies every update in a slice, in order.
    pub fn apply_all(&mut self, updates: &[Update]) {
        for &u in updates {
            self.apply(u);
        }
    }

    /// The current frequency `f_i` of an item (zero if absent).
    #[must_use]
    pub fn get(&self, item: Item) -> Delta {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// Number of updates applied so far (the current stream position `t`).
    #[must_use]
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Iterates over the non-zero coordinates `(i, f_i)`.
    pub fn iter(&self) -> impl Iterator<Item = (Item, Delta)> + '_ {
        self.counts.iter().map(|(&i, &c)| (i, c))
    }

    /// The support `{i : f_i ≠ 0}` as a vector of items.
    #[must_use]
    pub fn support(&self) -> Vec<Item> {
        self.counts.keys().copied().collect()
    }

    /// `F_0`: the number of distinct elements `|{i : f_i ≠ 0}|`.
    #[must_use]
    pub fn f0(&self) -> u64 {
        self.counts.len() as u64
    }

    /// `F_1` for insertion-only streams: the sum of all deltas. May be
    /// negative for adversarial turnstile streams; callers that need the
    /// norm should use [`FrequencyVector::l1`].
    #[must_use]
    pub fn total(&self) -> i128 {
        self.total_delta
    }

    /// The total inserted magnitude `Σ_t |Δ_t|` — the `F_1` of the
    /// absolute-value stream `h` used by the bounded-deletion model.
    #[must_use]
    pub fn total_magnitude(&self) -> u128 {
        self.total_magnitude
    }

    /// `L_1` norm `Σ_i |f_i|`.
    #[must_use]
    pub fn l1(&self) -> f64 {
        self.counts.values().map(|&c| c.unsigned_abs() as f64).sum()
    }

    /// `L_2` norm `(Σ_i f_i²)^{1/2}`.
    #[must_use]
    pub fn l2(&self) -> f64 {
        self.f2().sqrt()
    }

    /// `F_2 = Σ_i f_i²`.
    #[must_use]
    pub fn f2(&self) -> f64 {
        self.counts
            .values()
            .map(|&c| {
                let c = c as f64;
                c * c
            })
            .sum()
    }

    /// `L_∞` norm `max_i |f_i|`.
    #[must_use]
    pub fn l_infinity(&self) -> u64 {
        self.counts
            .values()
            .map(|&c| c.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// The `p`-th frequency moment `F_p = Σ_i |f_i|^p` (with `0^0 = 0`).
    ///
    /// For `p = 0` this returns [`FrequencyVector::f0`] as a float, matching
    /// the paper's convention.
    #[must_use]
    pub fn fp(&self, p: f64) -> f64 {
        assert!(p >= 0.0, "moment order p must be non-negative");
        if p == 0.0 {
            return self.f0() as f64;
        }
        self.counts
            .values()
            .map(|&c| (c.unsigned_abs() as f64).powf(p))
            .sum()
    }

    /// The `L_p` norm `‖f‖_p = F_p^{1/p}` for `p > 0`.
    #[must_use]
    pub fn lp(&self, p: f64) -> f64 {
        assert!(p > 0.0, "norm order p must be positive");
        self.fp(p).powf(1.0 / p)
    }

    /// The empirical Shannon entropy
    /// `H(f) = −Σ_i (|f_i|/‖f‖_1) log₂(|f_i|/‖f‖_1)` in bits.
    ///
    /// Returns `0` for the all-zeros vector.
    #[must_use]
    pub fn shannon_entropy(&self) -> f64 {
        let l1 = self.l1();
        if l1 == 0.0 {
            return 0.0;
        }
        self.counts
            .values()
            .map(|&c| {
                let p = c.unsigned_abs() as f64 / l1;
                if p > 0.0 {
                    -p * p.log2()
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// The α-Rényi entropy `H_α(f) = log₂(‖f‖_α^α / ‖f‖_1^α) / (1 − α)`
    /// for `α ≠ 1`, in bits.
    ///
    /// As `α → 1` this converges to the Shannon entropy (Proposition 7.1 of
    /// the paper quantifies the rate); callers use values of `α` slightly
    /// above 1 to approximate `H` additively.
    #[must_use]
    pub fn renyi_entropy(&self, alpha: f64) -> f64 {
        assert!(alpha > 0.0 && (alpha - 1.0).abs() > f64::EPSILON);
        let l1 = self.l1();
        if l1 == 0.0 {
            return 0.0;
        }
        let f_alpha = self.fp(alpha);
        (f_alpha.log2() - alpha * l1.log2()) / (1.0 - alpha)
    }

    /// All items with `|f_i| ≥ threshold`.
    #[must_use]
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<Item> {
        let mut out: Vec<Item> = self
            .counts
            .iter()
            .filter(|(_, &c)| c.unsigned_abs() as f64 >= threshold)
            .map(|(&i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }

    /// All items with `|f_i| ≥ ε · ‖f‖_2` — the `L_2` heavy hitters of
    /// Definition 6.1.
    #[must_use]
    pub fn l2_heavy_hitters(&self, epsilon: f64) -> Vec<Item> {
        self.heavy_hitters(epsilon * self.l2())
    }

    /// All items with `|f_i| ≥ ε · ‖f‖_1` — `L_1` heavy hitters.
    #[must_use]
    pub fn l1_heavy_hitters(&self, epsilon: f64) -> Vec<Item> {
        self.heavy_hitters(epsilon * self.l1())
    }

    /// Approximate memory footprint of the vector in bytes: the stored
    /// `(item, count)` pairs plus a per-entry table-slot overhead and the
    /// struct header. Allocator slack is not modelled, matching the
    /// accounting convention of `ars_sketch::Estimator::space_bytes`.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.counts.len() * (std::mem::size_of::<Item>() + std::mem::size_of::<Delta>() + 8)
    }

    /// Returns the dense representation over the domain `[0, n)`.
    ///
    /// Intended for tests and small domains; panics if any item is ≥ `n`.
    #[must_use]
    pub fn to_dense(&self, n: usize) -> Vec<Delta> {
        let mut out = vec![0; n];
        for (&i, &c) in &self.counts {
            let idx = usize::try_from(i).expect("item does not fit in usize");
            assert!(idx < n, "item {i} outside domain of size {n}");
            out[idx] = c;
        }
        out
    }
}

impl FromIterator<Update> for FrequencyVector {
    fn from_iter<T: IntoIterator<Item = Update>>(iter: T) -> Self {
        let mut f = Self::new();
        for u in iter {
            f.apply(u);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector_from(updates: &[(Item, Delta)]) -> FrequencyVector {
        updates.iter().map(|&(i, d)| Update::new(i, d)).collect()
    }

    #[test]
    fn empty_vector_statistics() {
        let f = FrequencyVector::new();
        assert_eq!(f.f0(), 0);
        assert_eq!(f.l1(), 0.0);
        assert_eq!(f.f2(), 0.0);
        assert_eq!(f.l_infinity(), 0);
        assert_eq!(f.shannon_entropy(), 0.0);
        assert!(f.heavy_hitters(1.0).is_empty());
    }

    #[test]
    fn apply_accumulates_and_prunes_zeros() {
        let mut f = FrequencyVector::new();
        f.apply(Update::insert(5));
        f.apply(Update::insert(5));
        f.apply(Update::delete(5));
        assert_eq!(f.get(5), 1);
        assert_eq!(f.f0(), 1);
        f.apply(Update::delete(5));
        assert_eq!(f.get(5), 0);
        assert_eq!(f.f0(), 0, "exactly-cancelled items leave the support");
        assert_eq!(f.updates_applied(), 4);
    }

    #[test]
    fn moments_match_hand_computation() {
        // f = (3, 4) over items {1, 2}.
        let f = vector_from(&[(1, 3), (2, 4)]);
        assert_eq!(f.f0(), 2);
        assert_eq!(f.l1(), 7.0);
        assert_eq!(f.f2(), 25.0);
        assert_eq!(f.l2(), 5.0);
        assert_eq!(f.l_infinity(), 4);
        assert!((f.fp(3.0) - (27.0 + 64.0)).abs() < 1e-9);
        assert!((f.lp(1.0) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fp_zero_equals_f0() {
        let f = vector_from(&[(1, 3), (2, -4), (9, 1)]);
        assert_eq!(f.fp(0.0), 3.0);
    }

    #[test]
    fn shannon_entropy_of_uniform_distribution() {
        // Four items each with frequency 2: entropy = log2(4) = 2 bits.
        let f = vector_from(&[(0, 2), (1, 2), (2, 2), (3, 2)]);
        assert!((f.shannon_entropy() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shannon_entropy_of_point_mass_is_zero() {
        let f = vector_from(&[(17, 100)]);
        assert!(f.shannon_entropy().abs() < 1e-12);
    }

    #[test]
    fn renyi_entropy_close_to_shannon_for_alpha_near_one() {
        let f = vector_from(&[(0, 10), (1, 5), (2, 1), (3, 1)]);
        let shannon = f.shannon_entropy();
        let renyi = f.renyi_entropy(1.0 + 1e-6);
        assert!(
            (shannon - renyi).abs() < 1e-3,
            "H = {shannon}, H_alpha = {renyi}"
        );
    }

    #[test]
    fn renyi_entropy_uniform_equals_log_support() {
        let f = vector_from(&[(0, 3), (1, 3), (2, 3), (3, 3)]);
        // For the uniform distribution every Rényi entropy equals log2(support).
        assert!((f.renyi_entropy(2.0) - 2.0).abs() < 1e-12);
        assert!((f.renyi_entropy(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_hitters_thresholding() {
        let f = vector_from(&[(1, 10), (2, 5), (3, 1), (4, -8)]);
        assert_eq!(f.heavy_hitters(8.0), vec![1, 4]);
        assert_eq!(f.heavy_hitters(100.0), Vec::<Item>::new());
        // L2 norm = sqrt(100 + 25 + 1 + 64) ≈ 13.78; 0.6 * L2 ≈ 8.27.
        assert_eq!(f.l2_heavy_hitters(0.6), vec![1]);
    }

    #[test]
    fn dense_conversion_round_trip() {
        let f = vector_from(&[(0, 1), (3, -2)]);
        assert_eq!(f.to_dense(4), vec![1, 0, 0, -2]);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn dense_conversion_rejects_out_of_domain_items() {
        let f = vector_from(&[(10, 1)]);
        let _ = f.to_dense(4);
    }

    #[test]
    fn total_and_magnitude_track_turnstile_mass() {
        let f = vector_from(&[(1, 5), (2, -3)]);
        assert_eq!(f.total(), 2);
        assert_eq!(f.total_magnitude(), 8);
    }
}
