//! Stream updates `(a_t, Δ_t)`.
//!
//! A data stream of length `m` over a domain `[n]` is a sequence of updates
//! `(a_1, Δ_1), …, (a_m, Δ_m)` where `a_t ∈ [n]` is an item identifier and
//! `Δ_t ∈ ℤ` is an increment (or decrement) to that item's frequency.

/// Item identifiers: an index into the domain `[n]`.
///
/// The paper indexes items by `i ∈ [n]`; we use `u64` so synthetic workloads
/// can use hashed or structured identifiers (IP addresses, user ids, …)
/// without remapping.
pub type Item = u64;

/// Frequency increments `Δ_t`.
pub type Delta = i64;

/// A single stream update `(a_t, Δ_t)`.
///
/// In the *insertion-only* model every `Δ_t > 0`; in the *turnstile* model
/// `Δ_t` may be negative; the *α-bounded-deletion* model allows negative
/// updates as long as the stream never deletes more than a `1 − 1/α`
/// fraction of the mass it inserted (see [`crate::StreamModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Update {
    /// The item `a_t` being updated.
    pub item: Item,
    /// The signed increment `Δ_t` applied to `f_{a_t}`.
    pub delta: Delta,
}

impl Update {
    /// Creates an update with an explicit increment.
    #[must_use]
    pub const fn new(item: Item, delta: Delta) -> Self {
        Self { item, delta }
    }

    /// Creates a unit insertion `(item, +1)`, the common case in
    /// insertion-only streams.
    #[must_use]
    pub const fn insert(item: Item) -> Self {
        Self { item, delta: 1 }
    }

    /// Creates a unit deletion `(item, -1)`.
    #[must_use]
    pub const fn delete(item: Item) -> Self {
        Self { item, delta: -1 }
    }

    /// Returns `true` if this update increases the item's frequency.
    #[must_use]
    pub const fn is_insertion(&self) -> bool {
        self.delta > 0
    }

    /// Returns `true` if this update decreases the item's frequency.
    #[must_use]
    pub const fn is_deletion(&self) -> bool {
        self.delta < 0
    }

    /// The absolute magnitude `|Δ_t|` of the update.
    #[must_use]
    pub const fn magnitude(&self) -> u64 {
        self.delta.unsigned_abs()
    }

    /// The update applied to the *absolute-value stream* `h` used by the
    /// bounded-deletion model: `(a_t, |Δ_t|)`.
    #[must_use]
    pub const fn absolute(&self) -> Self {
        Self {
            item: self.item,
            delta: self.delta.abs(),
        }
    }
}

impl From<(Item, Delta)> for Update {
    fn from((item, delta): (Item, Delta)) -> Self {
        Self { item, delta }
    }
}

impl From<Item> for Update {
    /// A bare item is interpreted as a unit insertion, matching the
    /// simplified presentation of insertion-only streams in the paper.
    fn from(item: Item) -> Self {
        Self::insert(item)
    }
}

/// Expands a sequence of updates with arbitrary magnitudes into unit
/// updates, preserving order.
///
/// The bounded-deletion model of the paper (Section 8) assumes unit updates
/// without loss of generality; this helper performs that reduction for
/// generators that produce aggregated updates.
#[must_use]
pub fn to_unit_updates(updates: &[Update]) -> Vec<Update> {
    let mut out = Vec::with_capacity(updates.iter().map(|u| u.magnitude() as usize).sum());
    for u in updates {
        let unit = if u.delta >= 0 { 1 } else { -1 };
        for _ in 0..u.magnitude() {
            out.push(Update::new(u.item, unit));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_delete_constructors() {
        let ins = Update::insert(42);
        assert_eq!(ins.item, 42);
        assert_eq!(ins.delta, 1);
        assert!(ins.is_insertion());
        assert!(!ins.is_deletion());

        let del = Update::delete(42);
        assert_eq!(del.delta, -1);
        assert!(del.is_deletion());
        assert!(!del.is_insertion());
    }

    #[test]
    fn magnitude_is_absolute_value() {
        assert_eq!(Update::new(1, -5).magnitude(), 5);
        assert_eq!(Update::new(1, 5).magnitude(), 5);
        assert_eq!(Update::new(1, 0).magnitude(), 0);
    }

    #[test]
    fn absolute_stream_update() {
        let u = Update::new(7, -3);
        let a = u.absolute();
        assert_eq!(a.item, 7);
        assert_eq!(a.delta, 3);
    }

    #[test]
    fn conversions_from_tuples_and_items() {
        let u: Update = (3u64, -2i64).into();
        assert_eq!(u, Update::new(3, -2));
        let v: Update = 9u64.into();
        assert_eq!(v, Update::insert(9));
    }

    #[test]
    fn unit_expansion_preserves_total_mass_and_order() {
        let updates = vec![Update::new(1, 3), Update::new(2, -2), Update::new(3, 1)];
        let units = to_unit_updates(&updates);
        assert_eq!(units.len(), 6);
        assert_eq!(&units[0..3], &[Update::insert(1); 3]);
        assert_eq!(&units[3..5], &[Update::delete(2); 2]);
        assert_eq!(units[5], Update::insert(3));
    }

    #[test]
    fn zero_delta_expands_to_nothing() {
        let units = to_unit_updates(&[Update::new(5, 0)]);
        assert!(units.is_empty());
    }
}
