//! Stream models and per-update validation of their constraints.
//!
//! The paper analyses three regimes:
//!
//! * **Insertion-only** — every `Δ_t > 0` (Sections 4–7).
//! * **Turnstile** — arbitrary signed updates, with `‖f^{(t)}‖_∞ ≤ M` at all
//!   times (Section 4.3 considers turnstile streams whose `F_p` flip number
//!   is bounded).
//! * **α-bounded deletion** — turnstile streams that never delete more than
//!   a `1 − 1/α` fraction of the `F_p` mass they inserted (Section 8,
//!   Definition 8.1).
//!
//! [`StreamValidator`] enforces the chosen model update-by-update so
//! adversaries and workload generators cannot silently escape the regime an
//! algorithm was analysed in.

use std::fmt;

use crate::frequency::FrequencyVector;
use crate::update::Update;

/// Errors produced when an update violates the declared stream model.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A non-positive update was submitted to an insertion-only stream.
    NonPositiveInsertion {
        /// The offending update.
        update: Update,
    },
    /// An update pushed `‖f‖_∞` above the model's magnitude bound `M`.
    MagnitudeBoundExceeded {
        /// The offending update.
        update: Update,
        /// The magnitude bound `M`.
        bound: u64,
        /// The frequency magnitude that would result.
        resulting: u64,
    },
    /// The α-bounded-deletion invariant `F_p(f) ≥ F_p(h)/α` was violated.
    BoundedDeletionViolated {
        /// The offending update.
        update: Update,
        /// The configured deletion parameter α.
        alpha: f64,
        /// `F_p` of the signed frequency vector after the update.
        fp_signed: f64,
        /// `F_p` of the absolute-value stream after the update.
        fp_absolute: f64,
    },
    /// The stream exceeded its declared maximum length `m`.
    LengthExceeded {
        /// The declared maximum stream length.
        max_length: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositiveInsertion { update } => write!(
                f,
                "update ({}, {}) is not a positive insertion",
                update.item, update.delta
            ),
            Self::MagnitudeBoundExceeded {
                update,
                bound,
                resulting,
            } => write!(
                f,
                "update ({}, {}) pushes |f_i| to {resulting}, above the bound M = {bound}",
                update.item, update.delta
            ),
            Self::BoundedDeletionViolated {
                update,
                alpha,
                fp_signed,
                fp_absolute,
            } => write!(
                f,
                "update ({}, {}) violates the {alpha}-bounded-deletion invariant: \
                 F_p(f) = {fp_signed} < F_p(h)/alpha = {}",
                update.item,
                update.delta,
                fp_absolute / alpha
            ),
            Self::LengthExceeded { max_length } => {
                write!(
                    f,
                    "stream exceeded its declared maximum length {max_length}"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// The stream regime an algorithm is analysed in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamModel {
    /// Insertion-only: every update has `Δ_t > 0`.
    InsertionOnly,
    /// General turnstile: signed updates, `‖f‖_∞ ≤ M` enforced when a bound
    /// is supplied.
    Turnstile,
    /// α-bounded deletion (Definition 8.1): at every time `t`,
    /// `‖f^{(t)}‖_p^p ≥ (1/α) ‖h^{(t)}‖_p^p` where `h` is the absolute-value
    /// stream.
    BoundedDeletion {
        /// The deletion parameter `α ≥ 1`.
        alpha: f64,
        /// The moment order `p ≥ 1` the invariant is stated for.
        p: f64,
    },
}

impl StreamModel {
    /// A bounded-deletion model for `F_p` with the given α.
    #[must_use]
    pub fn bounded_deletion(alpha: f64, p: f64) -> Self {
        assert!(alpha >= 1.0, "alpha must be at least 1");
        assert!(p >= 1.0, "bounded deletion is defined for p >= 1");
        Self::BoundedDeletion { alpha, p }
    }

    /// Whether negative updates are admissible at all in this model.
    #[must_use]
    pub fn allows_deletions(&self) -> bool {
        !matches!(self, Self::InsertionOnly)
    }
}

/// Validates a stream against a [`StreamModel`] update-by-update while
/// maintaining the exact signed and absolute frequency vectors.
///
/// The validator is used by the adversarial game harness to guarantee that
/// an adaptive adversary plays inside the model the algorithm under test was
/// analysed for, and by workload generators as a self-check.
#[derive(Debug, Clone)]
pub struct StreamValidator {
    model: StreamModel,
    /// Optional bound `M` on `‖f‖_∞` (`log(mM) = O(log n)` in the paper).
    magnitude_bound: Option<u64>,
    /// Optional bound on the stream length `m`.
    max_length: Option<u64>,
    signed: FrequencyVector,
    absolute: FrequencyVector,
}

impl StreamValidator {
    /// Creates a validator for the given model with no magnitude or length
    /// bounds.
    #[must_use]
    pub fn new(model: StreamModel) -> Self {
        Self {
            model,
            magnitude_bound: None,
            max_length: None,
            signed: FrequencyVector::new(),
            absolute: FrequencyVector::new(),
        }
    }

    /// Enforces `‖f‖_∞ ≤ bound` at every point of the stream.
    #[must_use]
    pub fn with_magnitude_bound(mut self, bound: u64) -> Self {
        self.magnitude_bound = Some(bound);
        self
    }

    /// Enforces a maximum stream length `m`.
    #[must_use]
    pub fn with_max_length(mut self, m: u64) -> Self {
        self.max_length = Some(m);
        self
    }

    /// The model being enforced.
    #[must_use]
    pub fn model(&self) -> StreamModel {
        self.model
    }

    /// The exact signed frequency vector of the accepted prefix.
    #[must_use]
    pub fn frequency(&self) -> &FrequencyVector {
        &self.signed
    }

    /// The exact absolute-value frequency vector `h` of the accepted prefix.
    #[must_use]
    pub fn absolute_frequency(&self) -> &FrequencyVector {
        &self.absolute
    }

    /// Number of accepted updates so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.signed.updates_applied()
    }

    /// Whether no updates have been accepted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks whether an update is admissible *without* applying it.
    ///
    /// Returns `Ok(())` if applying `update` next would keep the stream
    /// inside the model.
    pub fn check(&self, update: Update) -> Result<(), StreamError> {
        if let Some(m) = self.max_length {
            if self.len() >= m {
                return Err(StreamError::LengthExceeded { max_length: m });
            }
        }
        match self.model {
            StreamModel::InsertionOnly => {
                if update.delta <= 0 {
                    return Err(StreamError::NonPositiveInsertion { update });
                }
            }
            StreamModel::Turnstile => {}
            StreamModel::BoundedDeletion { alpha, p } => {
                // Simulate the update on both vectors and verify the invariant.
                let mut signed = self.signed.clone();
                let mut absolute = self.absolute.clone();
                signed.apply(update);
                absolute.apply(update.absolute());
                let fp_signed = signed.fp(p);
                let fp_absolute = absolute.fp(p);
                if fp_signed + 1e-9 < fp_absolute / alpha {
                    return Err(StreamError::BoundedDeletionViolated {
                        update,
                        alpha,
                        fp_signed,
                        fp_absolute,
                    });
                }
            }
        }
        if let Some(bound) = self.magnitude_bound {
            let resulting = (self.signed.get(update.item) + update.delta).unsigned_abs();
            if resulting > bound {
                return Err(StreamError::MagnitudeBoundExceeded {
                    update,
                    bound,
                    resulting,
                });
            }
        }
        Ok(())
    }

    /// Validates and applies an update, updating the internal exact state.
    pub fn apply(&mut self, update: Update) -> Result<(), StreamError> {
        self.check(update)?;
        self.signed.apply(update);
        self.absolute.apply(update.absolute());
        Ok(())
    }

    /// Validates and applies a whole slice of updates, stopping at the first
    /// violation.
    pub fn apply_all(&mut self, updates: &[Update]) -> Result<(), StreamError> {
        for &u in updates {
            self.apply(u)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_only_rejects_deletions_and_zero_updates() {
        let mut v = StreamValidator::new(StreamModel::InsertionOnly);
        assert!(v.apply(Update::insert(1)).is_ok());
        assert!(matches!(
            v.apply(Update::delete(1)),
            Err(StreamError::NonPositiveInsertion { .. })
        ));
        assert!(matches!(
            v.apply(Update::new(1, 0)),
            Err(StreamError::NonPositiveInsertion { .. })
        ));
        // Rejected updates do not change the exact state.
        assert_eq!(v.frequency().get(1), 1);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn turnstile_accepts_signed_updates() {
        let mut v = StreamValidator::new(StreamModel::Turnstile);
        assert!(v.apply(Update::new(1, 5)).is_ok());
        assert!(v.apply(Update::new(1, -7)).is_ok());
        assert_eq!(v.frequency().get(1), -2);
    }

    #[test]
    fn magnitude_bound_is_enforced() {
        let mut v = StreamValidator::new(StreamModel::Turnstile).with_magnitude_bound(3);
        assert!(v.apply(Update::new(9, 3)).is_ok());
        assert!(matches!(
            v.apply(Update::new(9, 1)),
            Err(StreamError::MagnitudeBoundExceeded { resulting: 4, .. })
        ));
        // Negative excursions are bounded too.
        assert!(matches!(
            v.apply(Update::new(9, -7)),
            Err(StreamError::MagnitudeBoundExceeded { .. })
        ));
    }

    #[test]
    fn max_length_is_enforced() {
        let mut v = StreamValidator::new(StreamModel::InsertionOnly).with_max_length(2);
        assert!(v.apply(Update::insert(1)).is_ok());
        assert!(v.apply(Update::insert(2)).is_ok());
        assert!(matches!(
            v.apply(Update::insert(3)),
            Err(StreamError::LengthExceeded { max_length: 2 })
        ));
    }

    #[test]
    fn bounded_deletion_allows_partial_deletion_within_alpha() {
        // alpha = 2, p = 1: at all times l1(f) >= l1(h) / 2.
        let mut v = StreamValidator::new(StreamModel::bounded_deletion(2.0, 1.0));
        for _ in 0..4 {
            v.apply(Update::insert(1)).unwrap();
        }
        // h mass 4, f mass 4. Deleting one: f = 3, h = 5, 3 >= 2.5 OK.
        assert!(v.apply(Update::delete(1)).is_ok());
        // Deleting another: f = 2, h = 6, 2 < 3 -> violation.
        assert!(matches!(
            v.apply(Update::delete(1)),
            Err(StreamError::BoundedDeletionViolated { .. })
        ));
    }

    #[test]
    fn bounded_deletion_with_large_alpha_behaves_like_turnstile() {
        let mut v = StreamValidator::new(StreamModel::bounded_deletion(1e9, 2.0));
        for i in 0..10u64 {
            v.apply(Update::insert(i)).unwrap();
        }
        for i in 0..9u64 {
            assert!(v.apply(Update::delete(i)).is_ok());
        }
    }

    #[test]
    fn model_queries() {
        assert!(!StreamModel::InsertionOnly.allows_deletions());
        assert!(StreamModel::Turnstile.allows_deletions());
        assert!(StreamModel::bounded_deletion(3.0, 1.0).allows_deletions());
    }

    #[test]
    fn error_display_is_informative() {
        let err = StreamError::NonPositiveInsertion {
            update: Update::new(3, -1),
        };
        assert!(err.to_string().contains("not a positive insertion"));
        let err = StreamError::LengthExceeded { max_length: 7 };
        assert!(err.to_string().contains('7'));
    }

    #[test]
    #[should_panic(expected = "alpha must be at least 1")]
    fn bounded_deletion_rejects_alpha_below_one() {
        let _ = StreamModel::bounded_deletion(0.5, 1.0);
    }
}
