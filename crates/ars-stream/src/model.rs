//! Stream models and per-update validation of their constraints.
//!
//! The paper analyses three regimes:
//!
//! * **Insertion-only** — every `Δ_t > 0` (Sections 4–7).
//! * **Turnstile** — arbitrary signed updates, with `‖f^{(t)}‖_∞ ≤ M` at all
//!   times (Section 4.3 considers turnstile streams whose `F_p` flip number
//!   is bounded).
//! * **α-bounded deletion** — turnstile streams that never delete more than
//!   a `1 − 1/α` fraction of the `F_p` mass they inserted (Section 8,
//!   Definition 8.1).
//!
//! [`StreamValidator`] enforces the chosen model update-by-update so
//! adversaries and workload generators cannot silently escape the regime an
//! algorithm was analysed in.
//!
//! # Validation tiers
//!
//! Enforcement is priced per model through [`ValidationTier`]s:
//!
//! * [`ValidationTier::Stateless`] — insertion-only is a sign check and an
//!   unbounded turnstile promise is vacuous, so those validators keep `O(1)`
//!   state (a length counter when `max_length` is set) and do `O(1)` work
//!   per update.
//! * [`ValidationTier::Incremental`] — the α-bounded-deletion invariant and
//!   the magnitude bound are statements about the exact frequency vector,
//!   so those validators must carry it; the running `F_p` moments of both
//!   the signed and the absolute-value stream are maintained **incrementally**
//!   — `O(1)` work per update, adjusting only the touched coordinate's
//!   contribution — instead of the pre-tiered clone-and-recompute.
//! * [`ValidationTier::Reference`] — the original clone-both-vectors,
//!   recompute-`F_p`-over-the-full-support implementation, `O(support)` per
//!   update. Kept as the semantic oracle the cheap tiers are conformance-
//!   tested against (and benchmarked against); never selected automatically.
//!
//! [`StreamValidator::new`] picks the cheapest tier the model admits;
//! [`StreamValidator::with_exact_state`] upgrades a stateless validator when
//! a driver needs the exact vectors (scoring, re-provisioning replay).

use std::fmt;

use crate::frequency::FrequencyVector;
use crate::update::{Delta, Update};

/// Errors produced when an update violates the declared stream model.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A non-positive update was submitted to an insertion-only stream.
    NonPositiveInsertion {
        /// The offending update.
        update: Update,
    },
    /// An update pushed `‖f‖_∞` above the model's magnitude bound `M`.
    MagnitudeBoundExceeded {
        /// The offending update.
        update: Update,
        /// The magnitude bound `M`.
        bound: u64,
        /// The frequency magnitude that would result.
        resulting: u64,
    },
    /// The α-bounded-deletion invariant `F_p(f) ≥ F_p(h)/α` was violated.
    BoundedDeletionViolated {
        /// The offending update.
        update: Update,
        /// The configured deletion parameter α.
        alpha: f64,
        /// `F_p` of the signed frequency vector after the update.
        fp_signed: f64,
        /// `F_p` of the absolute-value stream after the update.
        fp_absolute: f64,
    },
    /// The stream exceeded its declared maximum length `m`.
    LengthExceeded {
        /// The declared maximum stream length.
        max_length: u64,
    },
    /// The update's frequency arithmetic overflows the signed 64-bit delta
    /// domain (an adversarial `Δ_t` near `i64::MIN`/`i64::MAX`). Rejected
    /// with a typed error instead of panicking in debug or silently
    /// wrapping — and thereby passing the bound — in release.
    FrequencyOverflow {
        /// The offending update.
        update: Update,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositiveInsertion { update } => write!(
                f,
                "update ({}, {}) is not a positive insertion",
                update.item, update.delta
            ),
            Self::MagnitudeBoundExceeded {
                update,
                bound,
                resulting,
            } => write!(
                f,
                "update ({}, {}) pushes |f_i| to {resulting}, above the bound M = {bound}",
                update.item, update.delta
            ),
            Self::BoundedDeletionViolated {
                update,
                alpha,
                fp_signed,
                fp_absolute,
            } => write!(
                f,
                "update ({}, {}) violates the {alpha}-bounded-deletion invariant: \
                 F_p(f) = {fp_signed} < F_p(h)/alpha = {}",
                update.item,
                update.delta,
                fp_absolute / alpha
            ),
            Self::LengthExceeded { max_length } => {
                write!(
                    f,
                    "stream exceeded its declared maximum length {max_length}"
                )
            }
            Self::FrequencyOverflow { update } => write!(
                f,
                "update ({}, {}) overflows the signed 64-bit frequency domain",
                update.item, update.delta
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// The stream regime an algorithm is analysed in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamModel {
    /// Insertion-only: every update has `Δ_t > 0`.
    InsertionOnly,
    /// General turnstile: signed updates, `‖f‖_∞ ≤ M` enforced when a bound
    /// is supplied.
    Turnstile,
    /// α-bounded deletion (Definition 8.1): at every time `t`,
    /// `‖f^{(t)}‖_p^p ≥ (1/α) ‖h^{(t)}‖_p^p` where `h` is the absolute-value
    /// stream.
    BoundedDeletion {
        /// The deletion parameter `α ≥ 1`.
        alpha: f64,
        /// The moment order `p ≥ 1` the invariant is stated for.
        p: f64,
    },
}

impl StreamModel {
    /// A bounded-deletion model for `F_p` with the given α.
    #[must_use]
    pub fn bounded_deletion(alpha: f64, p: f64) -> Self {
        assert!(alpha >= 1.0, "alpha must be at least 1");
        assert!(p >= 1.0, "bounded deletion is defined for p >= 1");
        Self::BoundedDeletion { alpha, p }
    }

    /// Whether negative updates are admissible at all in this model.
    #[must_use]
    pub fn allows_deletions(&self) -> bool {
        !matches!(self, Self::InsertionOnly)
    }

    /// The cheapest [`ValidationTier`] that can enforce this model (before
    /// any magnitude bound is imposed; a magnitude bound always requires
    /// exact state).
    #[must_use]
    pub fn minimal_tier(&self) -> ValidationTier {
        match self {
            Self::InsertionOnly | Self::Turnstile => ValidationTier::Stateless,
            Self::BoundedDeletion { .. } => ValidationTier::Incremental,
        }
    }
}

/// The backend a [`StreamValidator`] enforces its model with — the price
/// axis of validation (see the module docs for the full story).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationTier {
    /// `O(1)` state and work: a sign check (insertion-only) or nothing at
    /// all (unbounded turnstile), plus a length counter.
    Stateless,
    /// Exact signed/absolute frequency vectors with running `F_p` moments
    /// adjusted by the single touched coordinate — `O(1)` work per update,
    /// `O(distinct)` state.
    Incremental,
    /// The pre-tiered oracle: clone both vectors and recompute `F_p` over
    /// the full support on every check — `O(support)` per update. For
    /// conformance testing and benchmarking only.
    Reference,
}

impl ValidationTier {
    /// Whether this tier maintains the exact frequency vectors.
    #[must_use]
    pub fn keeps_exact_state(self) -> bool {
        !matches!(self, Self::Stateless)
    }

    /// Short stable name for reports and typed errors.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Stateless => "stateless",
            Self::Incremental => "incremental",
            Self::Reference => "reference",
        }
    }
}

impl fmt::Display for ValidationTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// `|c|^p` as the `F_p` moment contribution of one coordinate.
fn moment(c: Delta, p: f64) -> f64 {
    let magnitude = c.unsigned_abs() as f64;
    if magnitude == 0.0 {
        // powf(0, 0) = 1; the paper's convention is 0^0 = 0.
        0.0
    } else {
        magnitude.powf(p)
    }
}

/// Exact validator state: the signed vector `f`, plus — for
/// bounded-deletion models only — the absolute-value stream `h` and the
/// running `F_p` moments of both. Other models never consult `h` or the
/// moments, so exact-state validators for them carry only the signed
/// vector (half the memory, no per-update `powf` work).
#[derive(Debug, Clone, Default)]
struct ExactState {
    signed: FrequencyVector,
    absolute: FrequencyVector,
    /// Running `Σ_i |f_i|^p`, maintained coordinate-incrementally.
    fp_signed: f64,
    /// Running `Σ_i h_i^p`, maintained coordinate-incrementally.
    fp_absolute: f64,
    /// `Some(p)` exactly when the model is bounded deletion: maintain `h`
    /// and the moments.
    moment_p: Option<f64>,
}

/// The per-coordinate transition an update would cause, with all the
/// arithmetic checked: old/new signed count and old/new absolute count
/// (the absolute pair is zeroed when `h` is not tracked).
struct Transition {
    old_signed: Delta,
    new_signed: Delta,
    old_absolute: Delta,
    new_absolute: Delta,
}

/// Everything an admission decision computed that the apply path can
/// commit without re-deriving: the checked transition (present exactly
/// when the tier keeps exact state) and, for the incremental
/// bounded-deletion check, the touched coordinate's `(Δ F_p(f), Δ F_p(h))`
/// moment deltas.
struct Admission {
    transition: Option<Transition>,
    moment_deltas: Option<(f64, f64)>,
}

impl ExactState {
    fn for_model(model: &StreamModel) -> Self {
        Self {
            moment_p: match model {
                StreamModel::BoundedDeletion { p, .. } => Some(*p),
                _ => None,
            },
            ..Self::default()
        }
    }

    /// Computes the checked coordinate transition for `update`, or the
    /// typed overflow error if any tracked count would leave the `i64`
    /// domain. This is the overflow gate every exact-state tier runs
    /// before an update may be applied, whatever the model.
    fn transition(&self, update: Update) -> Result<Transition, StreamError> {
        let overflow = || StreamError::FrequencyOverflow { update };
        let old_signed = self.signed.get(update.item);
        let new_signed = old_signed.checked_add(update.delta).ok_or_else(overflow)?;
        let (old_absolute, new_absolute) = if self.moment_p.is_some() {
            // |i64::MIN| does not fit in i64: the absolute-value stream h
            // would overflow even though the signed count might not.
            let magnitude = Delta::try_from(update.magnitude()).map_err(|_| overflow())?;
            let old = self.absolute.get(update.item);
            (old, old.checked_add(magnitude).ok_or_else(overflow)?)
        } else {
            (0, 0)
        };
        Ok(Transition {
            old_signed,
            new_signed,
            old_absolute,
            new_absolute,
        })
    }

    /// Commits an admitted update; for bounded-deletion models the running
    /// moments move by the touched coordinate's old/new contribution —
    /// `O(1)`, the whole point of the incremental tier. The transition and
    /// (on the incremental tier) the moment deltas come precomputed from
    /// the admission; only the reference tier re-derives its deltas here,
    /// keeping its running moments warm for a later tier switch.
    fn apply(&mut self, update: Update, admission: Admission) {
        let t = admission
            .transition
            .expect("exact-state tiers always produce a transition");
        if let Some(p) = self.moment_p {
            let (d_signed, d_absolute) = admission.moment_deltas.unwrap_or_else(|| {
                (
                    moment(t.new_signed, p) - moment(t.old_signed, p),
                    moment(t.new_absolute, p) - moment(t.old_absolute, p),
                )
            });
            // Floating-point cancellation can leave a tiny negative residue
            // when a moment returns to zero; the invariant is about exact
            // non-negative sums.
            self.fp_signed = (self.fp_signed + d_signed).max(0.0);
            self.fp_absolute = (self.fp_absolute + d_absolute).max(0.0);
            self.absolute
                .apply(Update::new(update.item, t.new_absolute - t.old_absolute));
        }
        self.signed.apply(update);
    }

    fn state_bytes(&self) -> usize {
        self.signed.state_bytes()
            + if self.moment_p.is_some() {
                self.absolute.state_bytes()
            } else {
                0
            }
    }
}

/// Validates a stream against a [`StreamModel`] update-by-update.
///
/// The validator is used by the adversarial game harness to guarantee that
/// an adaptive adversary plays inside the model the algorithm under test was
/// analysed for, by workload generators as a self-check, and by
/// [`StreamSession`](https://docs.rs/ars-core)-style serving drivers at
/// ingestion. Enforcement cost is tiered per model — see [`ValidationTier`]
/// and the module docs.
#[derive(Debug, Clone)]
pub struct StreamValidator {
    model: StreamModel,
    tier: ValidationTier,
    /// Optional bound `M` on `‖f‖_∞` (`log(mM) = O(log n)` in the paper).
    magnitude_bound: Option<u64>,
    /// Optional bound on the stream length `m`.
    max_length: Option<u64>,
    /// Number of accepted updates (the stream position `t`).
    accepted: u64,
    /// Exact vectors + running moments; `None` exactly for the stateless
    /// tier.
    exact: Option<ExactState>,
}

impl StreamValidator {
    /// Creates a validator for the given model with no magnitude or length
    /// bounds, on the cheapest [`ValidationTier`] the model admits:
    /// stateless for insertion-only and unbounded turnstile, incremental
    /// for bounded deletion.
    #[must_use]
    pub fn new(model: StreamModel) -> Self {
        let tier = model.minimal_tier();
        Self {
            model,
            tier,
            magnitude_bound: None,
            max_length: None,
            accepted: 0,
            exact: tier
                .keeps_exact_state()
                .then(|| ExactState::for_model(&model)),
        }
    }

    /// Enforces `‖f‖_∞ ≤ bound` at every point of the stream. The bound is
    /// a statement about the exact vector, so a stateless validator is
    /// upgraded to the incremental tier.
    ///
    /// # Panics
    ///
    /// Panics if updates were already accepted on a tier that kept no exact
    /// state (the bound could not be enforced over the unseen prefix).
    #[must_use]
    pub fn with_magnitude_bound(mut self, bound: u64) -> Self {
        self.magnitude_bound = Some(bound);
        self.ensure_exact_state();
        self
    }

    /// Enforces a maximum stream length `m`.
    #[must_use]
    pub fn with_max_length(mut self, m: u64) -> Self {
        self.max_length = Some(m);
        self
    }

    /// Upgrades a stateless validator to the incremental tier so the exact
    /// signed frequency vector is available through
    /// [`StreamValidator::frequency`] — for drivers that score against
    /// ground truth or replay state into a rebuilt estimator.
    ///
    /// # Panics
    ///
    /// Panics if updates were already accepted statelessly (the exact
    /// prefix is unrecoverable).
    #[must_use]
    pub fn with_exact_state(mut self) -> Self {
        self.ensure_exact_state();
        self
    }

    /// Selects a validation tier explicitly — chiefly
    /// [`ValidationTier::Reference`], the clone-and-recompute oracle the
    /// cheap tiers are conformance-tested and benchmarked against.
    ///
    /// # Panics
    ///
    /// Panics if the tier cannot enforce the model (stateless for bounded
    /// deletion or under a magnitude bound), or if updates were already
    /// accepted on a stateless validator being upgraded.
    #[must_use]
    pub fn with_tier(mut self, tier: ValidationTier) -> Self {
        if tier.keeps_exact_state() {
            self.ensure_exact_state();
            self.tier = tier;
        } else {
            assert!(
                self.model.minimal_tier() == ValidationTier::Stateless
                    && self.magnitude_bound.is_none(),
                "the {} model{} needs exact state; the stateless tier cannot enforce it",
                match self.model {
                    StreamModel::BoundedDeletion { .. } => "bounded-deletion",
                    _ => "magnitude-bounded",
                },
                if self.magnitude_bound.is_some() {
                    " with a magnitude bound"
                } else {
                    ""
                },
            );
            self.tier = ValidationTier::Stateless;
            self.exact = None;
        }
        self
    }

    fn ensure_exact_state(&mut self) {
        if self.exact.is_none() {
            assert!(
                self.accepted == 0,
                "cannot add exact state after {} updates were accepted statelessly",
                self.accepted
            );
            self.exact = Some(ExactState::for_model(&self.model));
            self.tier = ValidationTier::Incremental;
        }
    }

    /// The model being enforced.
    #[must_use]
    pub fn model(&self) -> StreamModel {
        self.model
    }

    /// The tier this validator enforces its model with.
    #[must_use]
    pub fn tier(&self) -> ValidationTier {
        self.tier
    }

    /// Memory held by the validator itself: `O(1)` for the stateless tier,
    /// the exact vector(s) otherwise — signed only, unless the model is
    /// bounded deletion, which also tracks the absolute-value stream.
    /// Serving drivers report this alongside the estimator's
    /// `space_bytes()` so the end-to-end space story includes enforcement.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.exact.as_ref().map_or(0, ExactState::state_bytes)
    }

    /// The exact signed frequency vector of the accepted prefix, when the
    /// tier keeps one (`None` on the stateless fast path — opt in with
    /// [`StreamValidator::with_exact_state`]).
    #[must_use]
    pub fn frequency(&self) -> Option<&FrequencyVector> {
        self.exact.as_ref().map(|state| &state.signed)
    }

    /// The exact absolute-value frequency vector `h` of the accepted
    /// prefix. Only bounded-deletion models track `h` (no other model
    /// consults it); everything else returns `None`.
    #[must_use]
    pub fn absolute_frequency(&self) -> Option<&FrequencyVector> {
        self.exact
            .as_ref()
            .filter(|state| state.moment_p.is_some())
            .map(|state| &state.absolute)
    }

    /// Number of accepted updates so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.accepted
    }

    /// Whether no updates have been accepted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accepted == 0
    }

    /// Checks whether an update is admissible *without* applying it.
    ///
    /// Returns `Ok(())` if applying `update` next would keep the stream
    /// inside the model. `O(1)` on the stateless and incremental tiers;
    /// `O(support)` on the reference tier.
    pub fn check(&self, update: Update) -> Result<(), StreamError> {
        self.admit(update).map(|_| ())
    }

    /// The shared admission decision behind [`StreamValidator::check`] and
    /// [`StreamValidator::apply`]: the verdict plus everything the apply
    /// path needs to commit the update without recomputing it.
    fn admit(&self, update: Update) -> Result<Admission, StreamError> {
        if let Some(m) = self.max_length {
            if self.accepted >= m {
                return Err(StreamError::LengthExceeded { max_length: m });
            }
        }
        // The overflow gate runs on every exact-state tier, whatever the
        // model: apply() must never wrap a tracked count.
        let transition = match &self.exact {
            Some(state) => Some(state.transition(update)?),
            None => None,
        };
        let mut moment_deltas = None;
        match self.model {
            StreamModel::InsertionOnly => {
                if update.delta <= 0 {
                    return Err(StreamError::NonPositiveInsertion { update });
                }
            }
            StreamModel::Turnstile => {}
            StreamModel::BoundedDeletion { alpha, p } => {
                let state = self
                    .exact
                    .as_ref()
                    .expect("bounded-deletion tiers always keep exact state");
                let (fp_signed, fp_absolute) = if self.tier == ValidationTier::Reference {
                    // The pre-tiered oracle: simulate on clones, recompute
                    // both moments over the full support.
                    let mut signed = state.signed.clone();
                    let mut absolute = state.absolute.clone();
                    signed.apply(update);
                    absolute.apply(update.absolute());
                    (signed.fp(p), absolute.fp(p))
                } else {
                    // Incremental: only the touched coordinate's
                    // contribution moves; the deltas are computed once and
                    // reused by apply().
                    let t = transition
                        .as_ref()
                        .expect("exact state produced a transition above");
                    let d_signed = moment(t.new_signed, p) - moment(t.old_signed, p);
                    let d_absolute = moment(t.new_absolute, p) - moment(t.old_absolute, p);
                    moment_deltas = Some((d_signed, d_absolute));
                    (
                        (state.fp_signed + d_signed).max(0.0),
                        (state.fp_absolute + d_absolute).max(0.0),
                    )
                };
                // The slack has a relative component: the incremental
                // tier's running sums carry f64 rounding drift that grows
                // with the stream and the moment magnitude, and an honest
                // violation clears the boundary by far more than one part
                // in 10^9. Applied identically to both exact tiers, so
                // tier verdicts cannot diverge on the tolerance itself.
                if fp_signed + 1e-9 + 1e-9 * fp_absolute < fp_absolute / alpha {
                    return Err(StreamError::BoundedDeletionViolated {
                        update,
                        alpha,
                        fp_signed,
                        fp_absolute,
                    });
                }
            }
        }
        if let Some(bound) = self.magnitude_bound {
            let resulting = transition
                .as_ref()
                .expect("magnitude-bounded validators always keep exact state")
                .new_signed
                .unsigned_abs();
            if resulting > bound {
                return Err(StreamError::MagnitudeBoundExceeded {
                    update,
                    bound,
                    resulting,
                });
            }
        }
        Ok(Admission {
            transition,
            moment_deltas,
        })
    }

    /// Validates and applies an update, updating the internal state. The
    /// admission's transition and moment deltas are computed once and
    /// committed directly — the exact hot path does not re-derive them.
    pub fn apply(&mut self, update: Update) -> Result<(), StreamError> {
        let admission = self.admit(update)?;
        self.accepted += 1;
        if let Some(state) = &mut self.exact {
            state.apply(update, admission);
        }
        Ok(())
    }

    /// Validates and applies a whole slice of updates, stopping at the first
    /// violation.
    pub fn apply_all(&mut self, updates: &[Update]) -> Result<(), StreamError> {
        for &u in updates {
            self.apply(u)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_only_rejects_deletions_and_zero_updates() {
        let mut v = StreamValidator::new(StreamModel::InsertionOnly).with_exact_state();
        assert!(v.apply(Update::insert(1)).is_ok());
        assert!(matches!(
            v.apply(Update::delete(1)),
            Err(StreamError::NonPositiveInsertion { .. })
        ));
        assert!(matches!(
            v.apply(Update::new(1, 0)),
            Err(StreamError::NonPositiveInsertion { .. })
        ));
        // Rejected updates do not change the exact state.
        assert_eq!(v.frequency().unwrap().get(1), 1);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn turnstile_accepts_signed_updates() {
        let mut v = StreamValidator::new(StreamModel::Turnstile).with_exact_state();
        assert!(v.apply(Update::new(1, 5)).is_ok());
        assert!(v.apply(Update::new(1, -7)).is_ok());
        assert_eq!(v.frequency().unwrap().get(1), -2);
    }

    #[test]
    fn magnitude_bound_is_enforced() {
        let mut v = StreamValidator::new(StreamModel::Turnstile).with_magnitude_bound(3);
        assert_eq!(v.tier(), ValidationTier::Incremental);
        assert!(v.apply(Update::new(9, 3)).is_ok());
        assert!(matches!(
            v.apply(Update::new(9, 1)),
            Err(StreamError::MagnitudeBoundExceeded { resulting: 4, .. })
        ));
        // Negative excursions are bounded too.
        assert!(matches!(
            v.apply(Update::new(9, -7)),
            Err(StreamError::MagnitudeBoundExceeded { .. })
        ));
    }

    #[test]
    fn magnitude_bound_rejects_overflowing_deltas_with_typed_errors() {
        // Adversarial deltas near i64::MAX/MIN: the pre-tiered check
        // computed `current + delta` unchecked, which panics in debug and
        // wraps (silently passing the bound) in release.
        let mut v = StreamValidator::new(StreamModel::Turnstile).with_magnitude_bound(10);
        assert!(v.apply(Update::new(3, 5)).is_ok());
        // 5 + i64::MAX wraps to i64::MIN + 4 in release — whose
        // unsigned_abs is huge, but a wrap in the other direction would
        // land back inside the bound; the typed error fires before any
        // arithmetic wraps.
        assert!(matches!(
            v.check(Update::new(3, i64::MAX)),
            Err(StreamError::FrequencyOverflow { .. })
        ));
        // 5 + i64::MIN stays representable: that one is an honest (huge)
        // excursion the bound itself rejects.
        assert!(matches!(
            v.check(Update::new(3, i64::MIN)),
            Err(StreamError::MagnitudeBoundExceeded { .. })
        ));
        // From a negative count, i64::MIN is the overflowing direction.
        let mut negative = StreamValidator::new(StreamModel::Turnstile).with_magnitude_bound(10);
        assert!(negative.apply(Update::new(3, -5)).is_ok());
        assert!(matches!(
            negative.check(Update::new(3, i64::MIN)),
            Err(StreamError::FrequencyOverflow { .. })
        ));
        assert_eq!(v.frequency().unwrap().get(3), 5);
        assert_eq!(v.len(), 1);
        // Overflow errors display informatively.
        let err = StreamError::FrequencyOverflow {
            update: Update::new(3, i64::MAX),
        };
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn exact_state_turnstile_rejects_overflow_with_typed_errors_not_panics() {
        // Regression: the overflow gate must run on every exact-state
        // tier, not only where a bounded-deletion or magnitude-bound
        // branch happens to need the transition — otherwise apply()'s
        // internal expect() panics instead of returning the typed error.
        let mut v = StreamValidator::new(StreamModel::Turnstile).with_exact_state();
        assert!(v.apply(Update::new(1, i64::MAX)).is_ok());
        assert!(matches!(
            v.apply(Update::new(1, 1)),
            Err(StreamError::FrequencyOverflow { .. })
        ));
        // i64::MIN is representable in the signed count from zero (no
        // absolute-value stream is tracked outside bounded deletion)...
        assert!(v.apply(Update::new(2, i64::MIN)).is_ok());
        // ...but one more step down overflows, again as a typed error.
        assert!(matches!(
            v.apply(Update::new(2, -1)),
            Err(StreamError::FrequencyOverflow { .. })
        ));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn absolute_stream_is_tracked_only_for_bounded_deletion() {
        let mut turnstile = StreamValidator::new(StreamModel::Turnstile).with_exact_state();
        turnstile.apply(Update::new(1, -3)).unwrap();
        assert!(turnstile.frequency().is_some());
        assert!(
            turnstile.absolute_frequency().is_none(),
            "no model but bounded deletion consults h; it is not maintained"
        );
        let mut bounded = StreamValidator::new(StreamModel::bounded_deletion(2.0, 1.0));
        bounded.apply(Update::insert(1)).unwrap();
        assert_eq!(bounded.absolute_frequency().unwrap().get(1), 1);
    }

    #[test]
    fn bounded_deletion_rejects_overflowing_deltas() {
        // |i64::MIN| does not fit in i64, so the absolute-value stream h
        // would overflow; the validator refuses instead of panicking.
        let mut v = StreamValidator::new(StreamModel::bounded_deletion(1e9, 1.0));
        assert!(v.apply(Update::new(1, 100)).is_ok());
        for tier in [ValidationTier::Incremental, ValidationTier::Reference] {
            let v = v.clone().with_tier(tier);
            assert!(matches!(
                v.check(Update::new(1, i64::MIN)),
                Err(StreamError::FrequencyOverflow { .. })
            ));
            assert!(matches!(
                v.check(Update::new(1, i64::MAX)),
                Err(StreamError::FrequencyOverflow { .. })
            ));
        }
    }

    #[test]
    fn max_length_is_enforced() {
        let mut v = StreamValidator::new(StreamModel::InsertionOnly).with_max_length(2);
        assert!(v.apply(Update::insert(1)).is_ok());
        assert!(v.apply(Update::insert(2)).is_ok());
        assert!(matches!(
            v.apply(Update::insert(3)),
            Err(StreamError::LengthExceeded { max_length: 2 })
        ));
    }

    #[test]
    fn bounded_deletion_allows_partial_deletion_within_alpha() {
        // alpha = 2, p = 1: at all times l1(f) >= l1(h) / 2.
        let mut v = StreamValidator::new(StreamModel::bounded_deletion(2.0, 1.0));
        for _ in 0..4 {
            v.apply(Update::insert(1)).unwrap();
        }
        // h mass 4, f mass 4. Deleting one: f = 3, h = 5, 3 >= 2.5 OK.
        assert!(v.apply(Update::delete(1)).is_ok());
        // Deleting another: f = 2, h = 6, 2 < 3 -> violation.
        assert!(matches!(
            v.apply(Update::delete(1)),
            Err(StreamError::BoundedDeletionViolated { .. })
        ));
    }

    #[test]
    fn bounded_deletion_with_large_alpha_behaves_like_turnstile() {
        let mut v = StreamValidator::new(StreamModel::bounded_deletion(1e9, 2.0));
        for i in 0..10u64 {
            v.apply(Update::insert(i)).unwrap();
        }
        for i in 0..9u64 {
            assert!(v.apply(Update::delete(i)).is_ok());
        }
    }

    #[test]
    fn model_queries() {
        assert!(!StreamModel::InsertionOnly.allows_deletions());
        assert!(StreamModel::Turnstile.allows_deletions());
        assert!(StreamModel::bounded_deletion(3.0, 1.0).allows_deletions());
    }

    #[test]
    fn tiers_are_selected_per_model_and_reported() {
        let insertion = StreamValidator::new(StreamModel::InsertionOnly);
        assert_eq!(insertion.tier(), ValidationTier::Stateless);
        assert!(insertion.frequency().is_none());

        let turnstile = StreamValidator::new(StreamModel::Turnstile);
        assert_eq!(turnstile.tier(), ValidationTier::Stateless);

        let bounded = StreamValidator::new(StreamModel::bounded_deletion(2.0, 1.0));
        assert_eq!(bounded.tier(), ValidationTier::Incremental);
        assert!(bounded.frequency().is_some());

        let upgraded = StreamValidator::new(StreamModel::InsertionOnly).with_exact_state();
        assert_eq!(upgraded.tier(), ValidationTier::Incremental);
        assert!(upgraded.frequency().is_some());

        assert_eq!(ValidationTier::Stateless.to_string(), "stateless");
        assert!(!ValidationTier::Stateless.keeps_exact_state());
        assert!(ValidationTier::Reference.keeps_exact_state());
    }

    #[test]
    fn stateless_tier_memory_is_constant_while_exact_tiers_grow() {
        let mut stateless = StreamValidator::new(StreamModel::InsertionOnly);
        let mut exact = StreamValidator::new(StreamModel::InsertionOnly).with_exact_state();
        let fixed = stateless.state_bytes();
        for i in 0..5_000u64 {
            stateless.apply(Update::insert(i)).unwrap();
            exact.apply(Update::insert(i)).unwrap();
        }
        assert_eq!(
            stateless.state_bytes(),
            fixed,
            "stateless validator memory must not grow with the support"
        );
        assert!(
            exact.state_bytes() > fixed + 5_000 * 8,
            "exact validator memory must reflect the 5000-item support, got {}",
            exact.state_bytes()
        );
    }

    #[test]
    fn incremental_tier_agrees_with_the_reference_oracle() {
        // A deletion-heavy sequence that repeatedly straddles the
        // alpha-boundary: every check verdict must agree between the O(1)
        // incremental tier and the clone-and-recompute reference.
        for (alpha, p) in [(2.0, 1.0), (1.5, 2.0), (4.0, 1.0)] {
            let model = StreamModel::bounded_deletion(alpha, p);
            let mut fast = StreamValidator::new(model);
            let mut oracle = StreamValidator::new(model).with_tier(ValidationTier::Reference);
            let mut state = 0x9E37_79B9_u64;
            let mut agreed_rejections = 0usize;
            for step in 0..4_000u64 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let item = (state >> 33) % 64;
                // Bias towards deletions so the invariant boundary is hit
                // often.
                let delta: i64 = if state % 5 < 2 { 2 } else { -1 };
                let u = Update::new(item, delta);
                let fast_verdict = fast.check(u);
                let oracle_verdict = oracle.check(u);
                assert_eq!(
                    fast_verdict.is_ok(),
                    oracle_verdict.is_ok(),
                    "tier disagreement at step {step} on {u:?}: \
                     incremental {fast_verdict:?} vs reference {oracle_verdict:?}"
                );
                if fast_verdict.is_ok() {
                    fast.apply(u).unwrap();
                    oracle.apply(u).unwrap();
                } else {
                    agreed_rejections += 1;
                }
            }
            assert!(
                agreed_rejections > 10,
                "the adversarial sequence never straddled the alpha = {alpha} boundary"
            );
        }
    }

    #[test]
    fn bounded_deletion_validation_cost_is_independent_of_support_size() {
        // Regression for the pre-tiered quadratic validator: per-update
        // cost must not scale with the number of distinct items. A
        // 60k-update stream over 15k distinct items must validate in the
        // same order of time as one over 10 distinct items (the reference
        // tier is ~1000x apart on these; a factor-25 band catches any
        // reintroduced O(support) work while tolerating timer noise).
        fn stream(distinct: u64) -> Vec<Update> {
            (0..60_000u64)
                .map(|i| {
                    // Three inserts then one delete per item keeps the
                    // stream exactly on the alpha = 2 boundary (f = h/2
                    // after every delete) while exercising both signs.
                    let item = (i / 4) % distinct;
                    if i % 4 == 3 {
                        Update::delete(item)
                    } else {
                        Update::insert(item)
                    }
                })
                .collect()
        }
        fn time(updates: &[Update]) -> std::time::Duration {
            // Best of three to damp scheduler noise.
            (0..3)
                .map(|_| {
                    let mut v = StreamValidator::new(StreamModel::bounded_deletion(2.0, 1.0));
                    let start = std::time::Instant::now();
                    v.apply_all(updates)
                        .expect("the pattern stays within alpha");
                    start.elapsed()
                })
                .min()
                .unwrap()
        }
        let narrow = time(&stream(10));
        let wide = time(&stream(15_000));
        assert!(
            wide < narrow * 25 + std::time::Duration::from_millis(50),
            "validation cost grew with support size: 10-distinct {narrow:?} vs \
             15k-distinct {wide:?}"
        );
    }

    #[test]
    fn error_display_is_informative() {
        let err = StreamError::NonPositiveInsertion {
            update: Update::new(3, -1),
        };
        assert!(err.to_string().contains("not a positive insertion"));
        let err = StreamError::LengthExceeded { max_length: 7 };
        assert!(err.to_string().contains('7'));
    }

    #[test]
    #[should_panic(expected = "alpha must be at least 1")]
    fn bounded_deletion_rejects_alpha_below_one() {
        let _ = StreamModel::bounded_deletion(0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "needs exact state")]
    fn stateless_tier_cannot_be_forced_onto_bounded_deletion() {
        let _ = StreamValidator::new(StreamModel::bounded_deletion(2.0, 1.0))
            .with_tier(ValidationTier::Stateless);
    }

    #[test]
    #[should_panic(expected = "accepted statelessly")]
    fn exact_state_cannot_be_added_mid_stream() {
        let mut v = StreamValidator::new(StreamModel::InsertionOnly);
        v.apply(Update::insert(1)).unwrap();
        let _ = v.with_exact_state();
    }
}
