//! Offline in-tree stub of the tiny `rand` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` crate the workspace vendors this drop-in subset: the [`Rng`] and
//! [`SeedableRng`] traits and [`rngs::StdRng`], backed by xoshiro256++
//! seeded through SplitMix64 (Blackman & Vigna). The statistical quality is
//! more than sufficient for the synthetic workload generators and
//! seed-derivation duties it serves here; none of the *cryptographic* uses
//! in the repo go through this crate (they use `ars-hash`'s from-scratch
//! ChaCha20).
//!
//! Only what the workspace actually calls is implemented: `gen`,
//! `gen_range` over integer/float ranges, and `seed_from_u64`.
#![forbid(unsafe_code)]

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform sample from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, matching `rand`'s
    /// `Standard` distribution for `f64`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform sample from `[0, span)` with `span >= 1`, using
/// Lemire's multiply-with-rejection method.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let threshold = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let x = rng.next_u64();
        let (hi, lo) = wide_mul(x, span);
        if lo >= threshold {
            return hi;
        }
    }
}

fn wide_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_range_impls!(u64, u32, usize, i64, i32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Subset of `rand::Rng`: uniform sampling of plain values and ranges.
pub trait Rng {
    /// The raw 64-bit generator output.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value of an inferred type (`u64`, `f64`, …).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with uniform bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Subset of `rand::SeedableRng`: deterministic construction from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna, 2019), seeded via SplitMix64 — the
    /// stand-in for `rand::rngs::StdRng` in this offline stub.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 1/2");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u64..5);
    }
}
